#include "core/marker.h"

#include <algorithm>

#include "obs/trace.h"

namespace dgr {

void Marker::begin(Plane plane, VertexId root, std::uint8_t root_prior) {
  PlaneState& ps = st(plane);
  DGR_CHECK_MSG(!ps.active, "marking phase already active on this plane");
  ++ps.epoch;  // O(1) unmark-all
  ps.active = true;
  ps.done = false;
  ps.tainted = false;
  ps.stats.reset();
  ps.rescue_q.clear();
  ps.rescue_waves = 0;
  // "Marking is started by spawning the task mark1(root, rootpar)" (§4.1).
  sink_.spawn(Task::mark(plane, root, VertexId::rootpar(), root_prior));
}

void Marker::exec(const Task& t) {
  DGR_CHECK(task_is_marking(t.kind));
  if (t.kind == TaskKind::kMark) {
    exec_mark(t.plane, t.d, t.s, t.prior);
  } else {
    exec_return(t.plane, t.d);
  }
}

void Marker::exec_mark_now(Plane plane, VertexId v, VertexId par,
                           std::uint8_t prior) {
  exec_mark(plane, v, par, prior);
}

void Marker::spawn_mark(Plane plane, VertexId v, VertexId par,
                        std::uint8_t prior) {
  ++st(plane).stats.coop_spawns;
  sink_.spawn(Task::mark(plane, v, par, prior));
}

void Marker::spawn_return(Plane plane, VertexId par) {
  if (par.is_rootpar()) {
    // Termination: the marking tree has fully collapsed ("if v = rootpar
    // then done := true", Fig 4-1). Notify the controller directly — the
    // sentinel is not owned by any PE.
    PlaneState& ps = st(plane);
    DGR_CHECK_MSG(!ps.done, "duplicate termination return");
    ps.done = true;
    if (done_cb_) done_cb_(plane);
    return;
  }
  sink_.spawn(Task::mark_return(plane, par));
}

void Marker::exec_mark(Plane plane, VertexId v, VertexId par,
                       std::uint8_t prior) {
  PlaneState& ps = st(plane);
#if DGR_TRACE_ENABLED
  const std::uint64_t nmarks = ++ps.stats.marks;
  if (trace_ && nmarks % kWaveFrontPeriod == 0)
    trace_->emit(obs::EventType::kWaveFront, plane, v.pe, 0, nmarks);
#else
  ++ps.stats.marks;
#endif
  Vertex& vx = g_.at(v);
  DGR_CHECK_MSG(vx.live, "mark task reached a freed vertex");
  MarkPlane& m = fresh(vx, plane);

  if (plane == Plane::kT) {
    // mark3 (Fig 5-3): no priorities, no re-marking.
    if (m.color == Color::kUnmarked) {
      modify(plane, v, m, par, 0);
    } else {
      spawn_return(plane, par);
    }
    return;
  }

  // mark2 (Fig 5-1).
  if (m.color == Color::kUnmarked) {
    modify(plane, v, m, par, prior);
  } else if (prior <= m.prior) {
    spawn_return(plane, par);
  } else {
    // Priority upgrade: release the old parent (its subtree-completion
    // obligation transfers to the new parent), then re-mark.
    ++ps.stats.remarks;
    if (m.color == Color::kTransient) spawn_return(plane, m.mt_par);
    modify(plane, v, m, par, prior);
  }
}

void Marker::modify(Plane plane, VertexId v, MarkPlane& m, VertexId par,
                    std::uint8_t prior) {
  m.color = Color::kTransient;  // touch(v)
  m.mt_par = par;
  m.prior = prior;

  const Vertex& vx = g_.at(v);
  const std::uint64_t epoch = st(plane).epoch;
  if (plane == Plane::kR) {
    // M_R traces through args(v); a child is marked with
    // min(prior, request-type(c,v)) (Fig 5-1). The engine's boundary
    // summary may veto a child whose owning PE was already sent an
    // equal-or-stronger mark this epoch (see TaskSink::admit_mark).
    for (const ArgEdge& e : vx.args) {
      if (!e.to.valid()) continue;
      const auto child_prior = static_cast<std::uint8_t>(
          std::min<int>(prior, request_type(e.req)));
      if (!sink_.admit_mark(plane, e.to, child_prior, epoch)) continue;
      sink_.spawn(Task::mark(plane, e.to, v, child_prior));
      ++m.mt_cnt;
    }
  } else {
    // M_T traces through requested(v) ∪ (args(v) − req-args(v)) (Fig 5-3),
    // where "req-args" is evaluated at the snapshot instant t_a: an edge
    // requested during this very phase (req_epoch == current epoch) was a
    // T-edge at t_a and is still traced — otherwise a task frontier that
    // descends past the marking wave would escape it (§5.2's in-transit
    // problem; the solution of [5]).
    for (VertexId r : vx.requested) {
      if (!r.valid()) continue;  // external demand "<-,v>"
      if (!sink_.admit_mark(plane, r, 0, epoch)) continue;
      sink_.spawn(Task::mark(plane, r, v, 0));
      ++m.mt_cnt;
    }
    for (VertexId r : vx.stale_requested) {
      if (!r.valid() || !g_.at(r).live) continue;
      if (!sink_.admit_mark(plane, r, 0, epoch)) continue;
      sink_.spawn(Task::mark(plane, r, v, 0));
      ++m.mt_cnt;
    }
    for (const ArgEdge& e : vx.args) {
      if (e.req != ReqKind::kNone && e.req_epoch != epoch) continue;
      if (!e.to.valid()) continue;
      if (!sink_.admit_mark(plane, e.to, 0, epoch)) continue;
      sink_.spawn(Task::mark(plane, e.to, v, 0));
      ++m.mt_cnt;
    }
  }

  if (m.mt_cnt == 0) {
    m.color = Color::kMarked;  // mark(v)
    spawn_return(plane, par);
  }
}

void Marker::exec_return(Plane plane, VertexId v) {
  PlaneState& ps = st(plane);
  ++ps.stats.returns;
  Vertex& vx = g_.at(v);
  MarkPlane& m = fresh(vx, plane);
  DGR_CHECK_MSG(m.mt_cnt > 0, "return1 underflow: broken marking invariant 3");
  if (--m.mt_cnt == 0) {
    m.color = Color::kMarked;
    spawn_return(plane, m.mt_par);
  }
}

void Marker::shade_marked(Plane plane, VertexId v) {
  if (!st(plane).active) return;
  MarkPlane& m = fresh(g_.at(v), plane);
  m.color = Color::kMarked;
}

void Marker::shade_unmarked(Plane plane, VertexId v) {
  if (!st(plane).active) return;
  MarkPlane& m = fresh(g_.at(v), plane);
  m.color = Color::kUnmarked;
  m.mt_cnt = 0;
}

void Marker::open_count(Plane plane, VertexId v, std::uint32_t n) {
  MarkPlane& m = fresh(g_.at(v), plane);
  DGR_CHECK_MSG(m.color == Color::kTransient,
                "open_count on a non-transient vertex");
  m.mt_cnt += n;
}

void Marker::rescue(Plane plane, VertexId v, std::uint8_t prior) {
  PlaneState& ps = st(plane);
  if (!ps.active) return;
  ps.rescue_q.emplace_back(v, prior);
}

bool Marker::is_rescue_queued(Plane plane, VertexId v) const {
  const PlaneState& ps = st(plane);
  for (const auto& [r, p] : ps.rescue_q)
    if (r == v) return true;
  return false;
}

bool Marker::launch_rescue_wave(Plane plane) {
  PlaneState& ps = st(plane);
  DGR_CHECK_MSG(ps.done, "rescue wave launched before the main wave ended");
  // Keep only entries that still need marking.
  std::vector<std::pair<VertexId, std::uint8_t>> pending;
  for (const auto& [v, prior] : ps.rescue_q) {
    // Re-marking with a higher priority is also a rescue concern: mark2's
    // upgrade path needs a live wave to run in.
    const Color c = color(plane, v);
    if (g_.at(v).live &&
        (c == Color::kUnmarked ||
         (plane == Plane::kR && this->prior(plane, v) < prior)))
      pending.emplace_back(v, prior);
  }
  ps.rescue_q.clear();
  if (pending.empty()) return false;

  if (!ps.rescue_root.valid())
    ps.rescue_root = g_.store(0).make_aux(OpCode::kTaskRoot);
  // The rescue root is re-touched as a transient holder of one open count
  // per seed; its collapse re-raises `done` through rootpar as usual.
  Vertex& rr = g_.at(ps.rescue_root);
  MarkPlane& m = fresh(rr, plane);
  m.color = Color::kTransient;
  m.mt_par = VertexId::rootpar();
  m.mt_cnt = static_cast<std::uint32_t>(pending.size());
  ps.done = false;
  ++ps.rescue_waves;
  DGR_TRACE_EVENT(trace_, obs::EventType::kRescueWave, plane, 0, 0,
                  pending.size());
  if (rescue_seed_hook_) rescue_seed_hook_(plane, ps.rescue_root, pending.size());
  for (const auto& [v, prior] : pending)
    sink_.spawn(Task::mark(plane, v, ps.rescue_root,
                           plane == Plane::kR ? prior : std::uint8_t{0}));
  return true;
}

}  // namespace dgr
