#include "core/invariants.h"

#include <cstdio>
#include <unordered_map>

namespace dgr {

namespace {

std::string vid_str(VertexId v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%u:%u", v.pe, v.idx);
  return buf;
}

template <typename F>
void for_each_child(Plane plane, const Vertex& vx, F&& fn) {
  if (plane == Plane::kR) {
    for (const ArgEdge& e : vx.args)
      if (e.to.valid()) fn(e.to);
  } else {
    for (VertexId r : vx.requested)
      if (r.valid()) fn(r);
    for (const ArgEdge& e : vx.args)
      if (e.req == ReqKind::kNone && e.to.valid()) fn(e.to);
  }
}

template <typename F>
void for_each_allocated(const Graph& g, F&& fn) {
  for (PeId pe = 0; pe < g.num_pes(); ++pe) {
    const Store& s = g.store(pe);
    for (std::uint32_t i = 0; i < s.capacity(); ++i)
      if (!s.is_free(i)) fn(VertexId{pe, i});
  }
}

}  // namespace

InvariantReport check_marking_invariants(const Graph& g, const Marker& marker,
                                         Plane plane,
                                         const std::vector<Task>& pending) {
  InvariantReport rep;

  std::unordered_map<std::uint64_t, std::uint64_t> marks_to;    // by dest d
  std::unordered_map<std::uint64_t, std::uint64_t> marks_from;  // by parent s
  std::unordered_map<std::uint64_t, std::uint64_t> returns_to;  // by dest d
  for (const Task& t : pending) {
    if (t.plane != plane) continue;
    if (t.kind == TaskKind::kMark) {
      ++marks_to[t.d.pack()];
      if (!t.s.is_rootpar()) ++marks_from[t.s.pack()];
    } else if (t.kind == TaskKind::kMarkReturn) {
      if (!t.d.is_rootpar()) ++returns_to[t.d.pack()];
    }
  }

  // transient children indexed by marking-tree parent.
  std::unordered_map<std::uint64_t, std::uint64_t> transient_kids;
  for_each_allocated(g, [&](VertexId v) {
    if (marker.is_transient(plane, v)) {
      const VertexId par = g.at(v).plane(plane).mt_par;
      if (par.valid() && !par.is_rootpar()) ++transient_kids[par.pack()];
    }
  });

  auto fail = [&](VertexId v, const char* which, const std::string& extra) {
    rep.ok = false;
    rep.what = std::string("marking invariant ") + which + " violated at " +
               vid_str(v) + (extra.empty() ? "" : ": " + extra);
  };

  // Invariants 1 and 2 are checked strictly only for plane kR, whose edge
  // set (args) mutates exclusively through the cooperating primitives. The
  // kT edge set also changes when requests are issued and replied to —
  // mutations the paper explicitly exempts from cooperation (§5.3), whose
  // liveness rests on the reduction axioms (task endpoints remain inside the
  // T-closure) rather than on the structural invariants. For kT only the
  // counter invariant (3) is structural.
  const bool structural = plane == Plane::kR;

  for_each_allocated(g, [&](VertexId v) {
    if (!rep.ok) return;
    const Vertex& vx = g.at(v);
    const Color c = marker.color(plane, v);

    if (c == Color::kTransient) {
      // Invariant 1.
      if (structural)
        for_each_child(plane, vx, [&](VertexId ch) {
          if (!rep.ok) return;
          if (marker.color(plane, ch) == Color::kUnmarked &&
              marks_to.find(ch.pack()) == marks_to.end() &&
              !marker.is_rescue_queued(plane, ch)) {
            fail(v, "1", "uncovered unmarked child " + vid_str(ch));
          }
        });
      // Invariant 3.
      const std::uint64_t expected = marks_from[v.pack()] +
                                     returns_to[v.pack()] +
                                     transient_kids[v.pack()];
      const std::uint64_t cnt = vx.plane(plane).mt_cnt;
      if (cnt != expected) {
        fail(v, "3",
             "mt_cnt=" + std::to_string(cnt) +
                 " expected=" + std::to_string(expected));
      }
    } else if (c == Color::kMarked && structural) {
      // Invariant 2, weakened for acquired references: a marked vertex may
      // point at an unmarked child only while that child is covered by a
      // pending mark task or the rescue queue (supplementary wave).
      for_each_child(plane, vx, [&](VertexId ch) {
        if (!rep.ok) return;
        if (marker.color(plane, ch) == Color::kUnmarked &&
            marks_to.find(ch.pack()) == marks_to.end() &&
            !marker.is_rescue_queued(plane, ch)) {
          fail(v, "2", "unmarked child " + vid_str(ch));
        }
      });
    }
  });

  return rep;
}

AccountingReport check_heap_accounting(const Graph& g, const Marker& marker) {
  AccountingReport rep;
  auto fail = [&](const std::string& what) {
    if (!rep.ok) return;
    rep.ok = false;
    rep.what = "heap accounting violated: " + what;
  };

  for (PeId pe = 0; pe < g.num_pes(); ++pe) {
    const Store& s = g.store(pe);
    std::size_t scanned_free = 0;
    for (std::uint32_t i = 0; i < s.capacity(); ++i) {
      const VertexId v = s.id(i);
      if (s.is_free(i)) {
        ++scanned_free;
        // R ∩ F = ∅: a slot on the free list must not be marked in the
        // current epoch of an active plane (it would mean a reachable vertex
        // was swept, the exact failure Property 1 exists to prevent).
        for (const Plane plane : {Plane::kR, Plane::kT}) {
          if (marker.active(plane) && !marker.is_unmarked(plane, v))
            fail("free slot " + vid_str(v) + " carries a current " +
                 (plane == Plane::kR ? std::string("R") : std::string("T")) +
                 "-plane mark");
        }
        continue;
      }
      const Vertex& vx = s.at(i);
      if (vx.aux) continue;  // aux roots are outside V
      ++rep.live;
      if (marker.is_marked(Plane::kR, v)) {
        ++rep.marked;
      } else {
        ++rep.gar;
      }
    }
    rep.free += s.free_count();
    if (scanned_free != s.free_count())
      fail("store " + std::to_string(pe) + " free-list count " +
           std::to_string(s.free_count()) + " != scanned free slots " +
           std::to_string(scanned_free));
    if (s.live_count() + s.free_count() != s.capacity())
      fail("store " + std::to_string(pe) + " live+free != capacity");
  }
  // The partition identity GAR = V − R − F, with V = live + free non-aux
  // slots, R the marked live set and F the free list.
  const std::size_t v_total = rep.live + rep.free;
  if (rep.gar != v_total - rep.marked - rep.free)
    fail("GAR " + std::to_string(rep.gar) + " != V-R-F " +
         std::to_string(v_total - rep.marked - rep.free));
  return rep;
}

}  // namespace dgr
