#include "core/compact_collector.h"

namespace dgr {

CompactCollector::CompactCollector(Graph& g, CompactMarker& marker,
                                   EngineHooks& hooks, VertexId root)
    : g_(g), marker_(marker), hooks_(hooks), root_(root) {
  marker_.set_done_callback([this] { on_wave_done(); });
}

void CompactCollector::start_cycle() {
  DGR_CHECK_MSG(idle_, "compact cycle already in progress");
  DGR_CHECK(root_.valid());
  idle_ = false;
  marker_.begin(root_, 3);
}

void CompactCollector::on_wave_done() {
  // Mutations during the wave may have queued uncovered vertices; keep
  // launching supplementary waves until the queue drains (multi-pass
  // two-color marking).
  if (marker_.launch_pending_wave()) return;
  restructure();
}

void CompactCollector::restructure() {
  CompactCycleResult res;
  res.cycle = cycles_ + 1;

  auto in_gar = [&](VertexId v) {
    if (!v.valid()) return false;
    const Vertex& vx = g_.at(v);
    return vx.live && !vx.aux && !marker_.is_marked(v);
  };

  res.expunged = hooks_.expunge_tasks(
      [&](const Task& t) { return in_gar(t.d); });

  std::vector<VertexId> garbage;
  g_.for_each_live([&](VertexId v) {
    if (in_gar(v)) garbage.push_back(v);
  });
  for (VertexId w : garbage) {
    for (const ArgEdge& e : g_.at(w).args) {
      if (e.req == ReqKind::kNone || !e.to.valid()) continue;
      g_.at(e.to).drop_requester(w);
    }
  }
  for (VertexId w : garbage) g_.store(w.pe).release(w.idx);
  res.swept = garbage.size();

  res.reprioritized = hooks_.reprioritize_tasks([&](const Task& t) {
    const std::uint8_t p = marker_.prior(t.d);
    return p ? p : std::uint8_t{1};
  });

  res.stats = marker_.stats();
  marker_.end();
  ++cycles_;
  total_swept_ += res.swept;
  last_ = res;
  idle_ = true;
}

}  // namespace dgr
