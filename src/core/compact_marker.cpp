#include "core/compact_marker.h"

#include <algorithm>

namespace dgr {

CompactMarker::CompactMarker(Graph& g, TaskSink& sink) : g_(g), sink_(sink) {
  pe_.resize(g.num_pes());
}

void CompactMarker::begin(VertexId root, std::uint8_t prior) {
  DGR_CHECK_MSG(!active_, "compact marking already active");
  ++epoch_;
  active_ = true;
  done_ = false;
  stats_.reset();
  pending_.clear();
  for (PeState& s : pe_) s = PeState{};
  // The initiating PE engages itself; the wave collapses when it disengages.
  pe_[root.pe].parent = kSelf;
  spawn_mark(root.pe, root, prior);
}

bool CompactMarker::launch_pending_wave() {
  DGR_CHECK(done_);
  std::vector<std::pair<VertexId, std::uint8_t>> seeds;
  for (const auto& [v, p] : pending_) {
    if (!g_.at(v).live) continue;
    if (!is_marked(v) || prior(v) < p) seeds.emplace_back(v, p);
  }
  pending_.clear();
  if (seeds.empty()) return false;
  ++stats_.waves;
  done_ = false;
  const PeId init = seeds.front().first.pe;
  pe_[init].parent = kSelf;
  for (const auto& [v, p] : seeds) spawn_mark(init, v, p);
  return true;
}

void CompactMarker::exec(const Task& t) {
  if (t.kind == TaskKind::kCompactMark) {
    exec_mark(t.d, t.s.pe, t.prior);
  } else {
    DGR_CHECK(t.kind == TaskKind::kPeAck);
    exec_ack(t.d.pe);
  }
}

void CompactMarker::spawn_mark(PeId from_pe, VertexId v, std::uint8_t prior) {
  ++pe_[from_pe].deficit;
  Task t;
  t.kind = TaskKind::kCompactMark;
  t.d = v;
  t.s = VertexId{from_pe, 0};  // sender PE for the acknowledgement
  t.prior = prior;
  sink_.spawn(std::move(t));
}

void CompactMarker::send_ack(PeId from_pe, PeId to_pe) {
  Task t;
  t.kind = TaskKind::kPeAck;
  t.d = VertexId{to_pe, 0};
  t.s = VertexId{from_pe, 0};
  sink_.spawn(std::move(t));
}

void CompactMarker::engage_or_ack(PeId pe, PeId from_pe) {
  if (pe_[pe].parent == kDisengaged) {
    // First message while disengaged: engage to the sender; its ack is
    // deferred until this PE disengages.
    pe_[pe].parent = from_pe;
  } else {
    send_ack(pe, from_pe);
  }
}

void CompactMarker::try_disengage(PeId pe) {
  PeState& s = pe_[pe];
  if (s.parent == kDisengaged || s.deficit != 0) return;
  if (s.parent == kSelf) {
    s.parent = kDisengaged;
    DGR_CHECK_MSG(!done_, "duplicate compact termination");
    done_ = true;
    if (done_cb_) done_cb_();
    return;
  }
  const PeId par = s.parent;
  s.parent = kDisengaged;
  send_ack(pe, par);
}

void CompactMarker::mark_children(VertexId v, std::uint8_t prior) {
  for (const ArgEdge& e : g_.at(v).args) {
    if (!e.to.valid()) continue;
    const auto child_prior = static_cast<std::uint8_t>(
        std::min<int>(prior, request_type(e.req)));
    spawn_mark(v.pe, e.to, child_prior);
  }
}

void CompactMarker::exec_mark(VertexId v, PeId from_pe, std::uint8_t prior) {
  ++stats_.marks;
  const PeId pe = v.pe;
  const bool was_disengaged = pe_[pe].parent == kDisengaged;
  if (was_disengaged) {
    pe_[pe].parent = from_pe;
  }
  DGR_CHECK_MSG(g_.at(v).live, "compact mark reached a freed vertex");
  MarkPlane& m = fresh_plane(v);
  if (m.color == Color::kUnmarked) {
    m.color = Color::kMarked;  // two-color: no transient state
    m.prior = prior;
    mark_children(v, prior);
  } else if (prior > m.prior) {
    ++stats_.remarks;
    m.prior = prior;
    mark_children(v, prior);
  }
  if (!was_disengaged) send_ack(pe, from_pe);
  try_disengage(pe);
}

void CompactMarker::exec_ack(PeId at_pe) {
  ++stats_.acks;
  PeState& s = pe_[at_pe];
  DGR_CHECK_MSG(s.deficit > 0, "acknowledgement underflow");
  --s.deficit;
  try_disengage(at_pe);
}

void CompactMarker::on_new_edge(VertexId parent, VertexId c,
                                std::uint8_t edge_prior) {
  if (!active_) return;
  if (!is_marked(parent)) return;  // the wave will trace the edge itself
  const auto p = static_cast<std::uint8_t>(
      std::min<int>(prior(parent), edge_prior));
  if (is_marked(c) && prior(c) >= p) return;
  pending_.emplace_back(c, p ? p : std::uint8_t{1});
}

void CompactMarker::shade_fresh(VertexId parent, VertexId fresh) {
  if (!active_) return;
  if (!is_marked(parent)) return;
  pending_.emplace_back(fresh, prior(parent) ? prior(parent) : std::uint8_t{1});
}

}  // namespace dgr
