#include "core/controller.h"

#include <unordered_set>

#include "graph/oracle.h"
#include "obs/trace.h"
#include "util/log.h"

namespace dgr {

Controller::Controller(Graph& g, Marker& marker, EngineHooks& hooks,
                       VertexId root)
    : g_(g), marker_(marker), hooks_(hooks) {
  if (root.valid()) roots_.push_back(root);
  marker_.set_done_callback([this](Plane p) { on_plane_done(p); });
}

VertexId Controller::marking_root() {
  DGR_CHECK_MSG(!roots_.empty(), "no computation root configured");
  if (roots_.size() == 1) return roots_[0];
  if (!uroot_.valid()) uroot_ = g_.store(0).make_aux(OpCode::kTRoot);
  Vertex& u = g_.at(uroot_);
  u.args.clear();
  for (VertexId r : roots_)
    if (g_.at(r).live) u.args.emplace_back(r, ReqKind::kVital);
  return uroot_;
}

void Controller::prewarm_aux_roots() {
  for (PeId pe = 0; pe < g_.num_pes(); ++pe) g_.store(pe).taskroot();
  if (!troot_.valid()) troot_ = g_.store(0).make_aux(OpCode::kTRoot);
  if (roots_.size() > 1 && !uroot_.valid())
    uroot_ = g_.store(0).make_aux(OpCode::kTRoot);
}

void Controller::start_cycle(const CycleOptions& opt) {
  DGR_CHECK_MSG(phase_ == Phase::kIdle, "marking cycle already in progress");
  opt_ = opt;
  cur_ = CycleResult{};
  cur_.cycle = cycles_completed() + 1;
  DGR_TRACE_EVENT(trace_, obs::EventType::kCycleStart, Plane::kR, 0,
                  cur_.cycle, roots_.size());
  if (opt_.detect_deadlock) {
    start_mt();
  } else {
    start_mr();
  }
}

void Controller::abort_cycle() {
  if (idle()) return;
  // Both planes, unconditionally: kT may be active (phase kMarkT) or ended
  // mid-cycle, kR may not have begun yet — abort() is a no-op either way.
  marker_.abort(Plane::kT);
  marker_.abort(Plane::kR);
  cur_ = CycleResult{};
  phase_ = Phase::kIdle;
}

VertexId Controller::build_task_roots() {
  // §5.2: args(taskroot_i) = { v | v is the source or destination of some
  // task in taskpool(i) }, args(troot) = { taskroot_i }. We assign a task's
  // endpoints to the taskroot of the PE owning its destination (where the
  // task pools or will execute), which also covers in-transit tasks.
  std::vector<TaskRef> refs;
  hooks_.collect_task_refs(refs);

  // Clear any stale endpoints from the previous cycle.
  for (PeId pe = 0; pe < g_.num_pes(); ++pe) {
    const VertexId tr = g_.store(pe).taskroot();
    g_.at(tr).args.clear();
  }

  std::unordered_set<std::uint64_t> dedup;
  auto attach = [&](PeId pool_pe, VertexId v) {
    if (!v.valid()) return;  // "<-,d>" tasks have no source
    if (!g_.at(v).live) return;
    const std::uint64_t key =
        (static_cast<std::uint64_t>(pool_pe) << 40) ^ v.pack();
    if (!dedup.insert(key).second) return;
    const VertexId tr = g_.store(pool_pe).taskroot();
    // Unrequested edges: mark3 traces args(v) − req-args(v).
    g_.at(tr).args.emplace_back(v, ReqKind::kNone);
  };
  for (const TaskRef& t : refs) {
    const PeId pool_pe = t.d.valid() ? t.d.pe : 0;
    attach(pool_pe, t.s);
    attach(pool_pe, t.d);
  }

  if (!troot_.valid()) troot_ = g_.store(0).make_aux(OpCode::kTRoot);
  Vertex& tv = g_.at(troot_);
  tv.args.clear();
  for (PeId pe = 0; pe < g_.num_pes(); ++pe)
    tv.args.emplace_back(g_.store(pe).taskroot(), ReqKind::kNone);
  return troot_;
}

void Controller::start_mt() {
  phase_ = Phase::kMarkT;
  cur_.ran_mt = true;
  const VertexId troot = build_task_roots();
  hooks_.on_plane_begin(Plane::kT);
  marker_.begin(Plane::kT, troot, 0);
  DGR_TRACE_EVENT(trace_, obs::EventType::kPhaseBegin, Plane::kT, 0,
                  cur_.cycle, marker_.epoch(Plane::kT));
}

void Controller::start_mr() {
  phase_ = Phase::kMarkR;
  const VertexId mroot = marking_root();
  hooks_.on_plane_begin(Plane::kR);
  marker_.begin(Plane::kR, mroot, 3);
  DGR_TRACE_EVENT(trace_, obs::EventType::kPhaseBegin, Plane::kR, 0,
                  cur_.cycle, marker_.epoch(Plane::kR));
}

void Controller::on_plane_done(Plane p) {
  // Acquired references queued for a supplementary wave keep the phase open
  // until the queue drains (see Marker::launch_rescue_wave).
  if (marker_.launch_rescue_wave(p)) return;

  if (phase_.load(std::memory_order_acquire) == Phase::kMarkT) {
    DGR_CHECK(p == Plane::kT);
    cur_.stats_t = marker_.stats(Plane::kT);
    DGR_TRACE_EVENT(trace_, obs::EventType::kPhaseEnd, Plane::kT, 0,
                    cur_.cycle, cur_.stats_t.marks, cur_.stats_t.returns);
    // "M_T must execute before M_R to properly detect deadlocked nodes"
    // (§5.4.1). The T marks persist (separate plane) while M_R runs.
    start_mr();
    return;
  }
  DGR_CHECK(phase_ == Phase::kMarkR && p == Plane::kR);
  cur_.stats_r = marker_.stats(Plane::kR);
  DGR_TRACE_EVENT(trace_, obs::EventType::kPhaseEnd, Plane::kR, 0, cur_.cycle,
                  cur_.stats_r.marks, cur_.stats_r.returns);
  if (defer_restructure_) {
    phase_.store(Phase::kRestructureDue, std::memory_order_release);
  } else {
    restructure();
  }
}

void Controller::run_restructure() {
  DGR_CHECK(restructure_due());
  restructure();
}

void Controller::restructure() {
  hooks_.quiesce_begin();

  // (d) Deadlock report: DL'_v = R'_v − T' (Theorem 2). Only valid when M_T
  // ran this cycle and no mutation tainted the T plane.
  cur_.deadlock_report_valid =
      cur_.ran_mt && !marker_.cycle_tainted(Plane::kT);
  if (cur_.deadlock_report_valid) {
    g_.for_each_live([&](VertexId v) {
      // Evaluated vertices are exempt: deadlock means the value is awaited
      // yet can never be computed (reduction axiom 5 speaks of vertices
      // whose value "is never computed"). A finished root is in R_v − T but
      // is certainly not deadlocked.
      if (marker_.is_marked(Plane::kR, v) && marker_.prior(Plane::kR, v) == 3 &&
          !marker_.is_marked(Plane::kT, v) && !g_.at(v).value.defined())
        cur_.deadlocked.push_back(v);
    });
  }

  // (b) Expunge irrelevant tasks BEFORE sweeping, so no surviving task
  // targets a freed vertex. IRR' = { <s,d> | d ∈ GAR' } (Property 6 /
  // Corollary 1); GAR' = live ∧ ¬aux ∧ ¬marked_R.
  auto in_gar = [&](VertexId v) {
    if (!v.valid()) return false;
    const Vertex& vx = g_.at(v);
    return vx.live && !vx.aux && !marker_.is_marked(Plane::kR, v);
  };
  if (cur_.deadlock_report_valid) {
    DGR_TRACE_EVENT(trace_, obs::EventType::kDeadlockReport, Plane::kT, 0,
                    cur_.cycle, cur_.deadlocked.size());
    // Evidence chain for the post-mortem analyzer: name each DL'_v member
    // (requested in R' yet unreachable from any task — Theorem 2).
    for (VertexId v : cur_.deadlocked)
      DGR_TRACE_EVENT(trace_, obs::EventType::kDeadlockVertex, Plane::kT,
                      v.pe, cur_.cycle, v.idx);
  }

  cur_.expunged = hooks_.expunge_tasks(
      [&](const Task& t) { return in_gar(t.d); });
  DGR_TRACE_EVENT(trace_, obs::EventType::kExpunge, Plane::kR, 0, cur_.cycle,
                  cur_.expunged);

  // Clear taskroot endpoint lists so they never dangle into swept slots.
  for (PeId pe = 0; pe < g_.num_pes(); ++pe)
    g_.at(g_.store(pe).taskroot()).args.clear();
  if (troot_.valid()) {
    // troot's edges point only at aux taskroots; clearing keeps it inert
    // between cycles.
    g_.at(troot_).args.clear();
  }

  // (a) Sweep. First purge requested-back-edges originating at garbage
  // (a garbage requester w with a pending request w→x leaves w inside
  // requested(x); x would later "reply" into a freed slot). Then release.
  std::vector<VertexId> garbage;
  g_.for_each_live([&](VertexId v) {
    if (in_gar(v)) garbage.push_back(v);
  });
  if (paranoid_) {
    const Oracle oracle(g_, roots_.size() == 1 ? roots_[0] : uroot_, {});
    for (VertexId w : garbage) {
      if (oracle.in_R(w)) {
        DGR_ERROR("cycle %llu about to sweep REACHABLE %u:%u (prior %d)",
                  (unsigned long long)cur_.cycle, w.pe, w.idx,
                  oracle.prior_at(w));
        DGR_CHECK_MSG(false, "paranoid sweep check failed");
      }
    }
  }
  for (VertexId w : garbage) {
    for (const ArgEdge& e : g_.at(w).args) {
      if (e.req == ReqKind::kNone || !e.to.valid()) continue;
      g_.at(e.to).drop_requester(w);
    }
  }
  for (VertexId w : garbage) g_.store(w.pe).release(w.idx);
  cur_.swept = garbage.size();
  DGR_TRACE_EVENT(trace_, obs::EventType::kSweep, Plane::kR, 0, cur_.cycle,
                  cur_.swept);

  // Stale-waiter lists (in-transit ↦-edge accounting, see
  // Vertex::stale_requested) have served their purpose for this cycle's M_T.
  g_.for_each_live([&](VertexId v) { g_.at(v).stale_requested.clear(); });

  // (c) Dynamic task prioritization: a pooled task's priority becomes the
  // marked priority of its destination (vital=3, eager=2, reserve=1).
  cur_.reprioritized = hooks_.reprioritize_tasks([&](const Task& t) {
    const std::uint8_t p = marker_.prior(Plane::kR, t.d);
    return p ? p : std::uint8_t{1};
  });
  DGR_TRACE_EVENT(trace_, obs::EventType::kReprioritize, Plane::kR, 0,
                  cur_.cycle, cur_.reprioritized);

  marker_.end(Plane::kR);
  if (cur_.ran_mt) marker_.end(Plane::kT);

  cycles_.fetch_add(1, std::memory_order_acq_rel);
  total_swept_ += cur_.swept;
  total_expunged_ += cur_.expunged;
  DGR_TRACE_EVENT(trace_, obs::EventType::kCycleEnd, Plane::kR, 0, cur_.cycle,
                  cur_.swept, cur_.expunged);
  last_ = cur_;
  phase_ = Phase::kIdle;
  hooks_.quiesce_end();
  hooks_.on_cycle_complete(last_);
  if (observer_) observer_(last_);

  if (continuous_) start_cycle(continuous_opt_);
}

}  // namespace dgr
