// The executable task: the unit of work that propagates between vertices
// (Hudak §2.1: "an unexecuted task t is represented as a pair <s,d>").
//
// Both processes of the paper are expressed as tasks:
//   reduction tasks — kRequest / kReturnVal / kUnwind, executed by the
//     reduction engine at the PE owning the destination vertex;
//   marking tasks — kMark / kMarkReturn in one of the two planes (M_R, M_T),
//     executed by the Marker.
//
// A task is routed to owner(d) and its execution is atomic with respect to
// the vertices it manipulates (enforced by the engines).
#pragma once

#include <cstdint>
#include <vector>

#include "graph/ids.h"
#include "graph/value.h"
#include "graph/vertex.h"

namespace dgr {

enum class TaskKind : std::uint8_t {
  // Reduction process.
  kRequest,    // s requests d's value with demand strength `demand`
  kReturnVal,  // s returns `value` to d
  kEval,       // begin/continue evaluating d (self-addressed work item)

  // Marking process (plane selects M_R vs M_T; see Figs 4-1, 5-1, 5-3).
  kMark,        // mark{1,2,3}(v=d, par=s [, prior])
  kMarkReturn,  // return1(v=d)

  // §6 compact marking variant (per-PE Dijkstra-Scholten termination).
  kCompactMark,  // mark v=d with `prior`; s.pe = sending PE
  kPeAck,        // acknowledge one mark message; d.pe = receiving PE
};

inline bool task_is_marking(TaskKind k) {
  return k == TaskKind::kMark || k == TaskKind::kMarkReturn ||
         k == TaskKind::kCompactMark || k == TaskKind::kPeAck;
}

struct Task {
  TaskKind kind = TaskKind::kMark;
  VertexId d;  // destination — routing key
  VertexId s;  // source; parent for kMark; invalid() allowed ("<-,d>")

  // Marking payload.
  Plane plane = Plane::kR;
  std::uint8_t prior = 0;  // mark2 priority (3/2/1); 0 for mark1/mark3

  // Reduction payload.
  ReqKind demand = ReqKind::kVital;  // for kRequest
  Value value;                       // for kReturnVal

  // Pool ordering priority for reduction tasks (3 vital .. 1 reserve);
  // updated by the restructuring phase ("dynamic prioritization of tasks").
  std::uint8_t pool_prior = 3;

  static Task request(VertexId s, VertexId d, ReqKind demand) {
    Task t;
    t.kind = TaskKind::kRequest;
    t.s = s;
    t.d = d;
    t.demand = demand;
    t.pool_prior = demand == ReqKind::kVital ? 3 : 2;
    return t;
  }
  static Task return_val(VertexId s, VertexId d, const Value& v,
                         std::uint8_t pool_prior = 3) {
    Task t;
    t.kind = TaskKind::kReturnVal;
    t.s = s;
    t.d = d;
    t.value = v;
    t.pool_prior = pool_prior;
    return t;
  }
  static Task eval(VertexId d, std::uint8_t pool_prior) {
    Task t;
    t.kind = TaskKind::kEval;
    t.d = d;
    t.s = d;
    t.pool_prior = pool_prior;
    return t;
  }
  static Task mark(Plane plane, VertexId v, VertexId par, std::uint8_t prior) {
    Task t;
    t.kind = TaskKind::kMark;
    t.plane = plane;
    t.d = v;
    t.s = par;
    t.prior = prior;
    return t;
  }
  static Task mark_return(Plane plane, VertexId v) {
    Task t;
    t.kind = TaskKind::kMarkReturn;
    t.plane = plane;
    t.d = v;
    return t;
  }
};

// Where tasks go when spawned. Implemented by the engines: a spawned task is
// (logically) a message routed to owner(d); "no waiting is done for the
// completion of the task" (§4.1).
class TaskSink {
 public:
  virtual ~TaskSink() = default;
  virtual void spawn(Task t) = 0;

  // Boundary-summary admission for a child mark the Marker is about to
  // spawn from modify() (parent transient, mt_cnt about to be incremented).
  // Returning false means the engine already forwarded an equal-or-stronger
  // mark for `child` to its owning PE this epoch; the Marker then skips both
  // the spawn and the count, which is sound because the recorded request
  // either has not executed yet — it still holds a marking-tree count, so
  // the plane cannot terminate before it delivers at least `prior` to the
  // child — or has executed, leaving the child's recorded priority at or
  // above `prior` (mark2 would return immediately). Engines without a
  // summary table admit everything. Only modify()-spawned child marks
  // consult this: root/rescue seeds and cooperation re-marks bypass it.
  virtual bool admit_mark(Plane plane, VertexId child, std::uint8_t prior,
                          std::uint64_t epoch) {
    (void)plane, (void)child, (void)prior, (void)epoch;
    return true;
  }
};

}  // namespace dgr
