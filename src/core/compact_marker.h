// The §6 space optimization: "it is possible to combine all of the mt-cnt's
// and mt-par's into just two words on each PE."
//
// This variant drops the per-vertex marking tree entirely. A vertex carries
// only a color (and priority); there is no transient state, no mt_cnt and no
// mt_par. Termination is detected at PE granularity with Dijkstra-Scholten
// diffusing-computation bookkeeping, which needs exactly two words per PE:
//
//   word 1: engagement (engaged flag + parent PE),
//   word 2: deficit   (mark messages sent and not yet acknowledged).
//
// A PE processing a mark message while disengaged becomes engaged to the
// sender; every other mark message is acknowledged immediately after
// processing. A PE whose deficit returns to zero disengages, acknowledging
// its engagement message; when the PE that initiated the wave disengages,
// marking is complete.
//
// Mutator cooperation is simpler but weaker than the tree marker's: with
// only two colors there is no open count to splice into, so a mutation that
// hands a marked vertex an unmarked child QUEUES the child, and the
// controller runs supplementary waves until the queue drains (the same
// multi-pass structure as the rescue waves; Dijkstra's classic repeated-scan
// idea). The trade-offs against Figs 4-1/5-1 are measured in
// bench_compact.
//
// The compact marker supports M_R-style marking with priorities (garbage
// collection, task classification); it does not build the structures M_T
// needs, so deadlock detection stays with the tree marker — consistent with
// §6's remark that M_T is only run occasionally anyway.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "core/task.h"
#include "graph/graph.h"

namespace dgr {

struct CompactStats {
  std::uint64_t marks = 0;       // mark messages processed
  std::uint64_t acks = 0;        // acknowledgement messages processed
  std::uint64_t remarks = 0;     // priority re-marks
  std::uint64_t waves = 0;       // supplementary waves (cooperation queue)
  void reset() { *this = CompactStats{}; }
};

class CompactMarker {
 public:
  CompactMarker(Graph& g, TaskSink& sink);

  // Begin a wave from `root`. Uses plane kR's color/prior/epoch fields (the
  // mt_cnt/mt_par words stay untouched — that is the savings).
  void begin(VertexId root, std::uint8_t prior = 3);

  bool active() const { return active_; }
  bool done() const { return done_; }
  void end() { active_ = false; }
  std::uint64_t epoch() const { return epoch_; }

  void set_done_callback(std::function<void()> cb) { done_cb_ = std::move(cb); }

  // Engine dispatch for kCompactMark / kPeAck tasks.
  void exec(const Task& t);

  // Epoch-aware color/priority (two-color: unmarked / marked).
  bool is_marked(VertexId v) const {
    const MarkPlane& m = g_.at(v).plane(Plane::kR);
    return m.epoch == epoch_ && m.color == Color::kMarked;
  }
  std::uint8_t prior(VertexId v) const {
    const MarkPlane& m = g_.at(v).plane(Plane::kR);
    return m.epoch == epoch_ ? m.prior : 0;
  }

  // ---- Mutator cooperation (two-color write barrier). ----
  // New edge parent→c: if the wave may already have passed the parent,
  // queue c for a supplementary wave.
  void on_new_edge(VertexId parent, VertexId c, std::uint8_t edge_prior);
  // Fresh-from-free-list shading (expand-node analogue).
  void shade_fresh(VertexId parent, VertexId fresh);

  // Launch a supplementary wave over queued vertices; returns false if the
  // queue was empty (the cycle can move to restructuring).
  bool launch_pending_wave();

  const CompactStats& stats() const { return stats_; }

  // The §6 accounting: marking words per PE (engagement + deficit) vs the
  // tree marker's per-vertex mt_cnt + mt_par.
  static constexpr std::size_t kWordsPerPe = 2;

 private:
  struct PeState {
    // Word 1: engagement. kDisengaged, or the parent PE id, or kSelf for
    // the wave initiator.
    std::uint32_t parent = kDisengaged;
    // Word 2: outstanding mark messages sent by this PE.
    std::uint32_t deficit = 0;
  };
  static constexpr std::uint32_t kDisengaged = 0xffffffffu;
  static constexpr std::uint32_t kSelf = 0xfffffffeu;

  void exec_mark(VertexId v, PeId from_pe, std::uint8_t prior);
  void exec_ack(PeId at_pe);
  void spawn_mark(PeId from_pe, VertexId v, std::uint8_t prior);
  void send_ack(PeId from_pe, PeId to_pe);
  void engage_or_ack(PeId pe, PeId from_pe);
  void try_disengage(PeId pe);
  void mark_children(VertexId v, std::uint8_t prior);

  MarkPlane& fresh_plane(VertexId v) {
    MarkPlane& m = g_.at(v).plane(Plane::kR);
    if (m.epoch != epoch_) {
      m.epoch = epoch_;
      m.color = Color::kUnmarked;
      m.prior = 0;
    }
    return m;
  }

  Graph& g_;
  TaskSink& sink_;
  std::uint64_t epoch_ = 0;
  bool active_ = false;
  bool done_ = false;
  std::vector<PeState> pe_;
  std::vector<std::pair<VertexId, std::uint8_t>> pending_;
  CompactStats stats_;
  std::function<void()> done_cb_;
};

}  // namespace dgr
