// Runtime checker for the marking invariants of Hudak §5.4.1:
//
//   1. transient(v) ⇒ every child of v is covered: it is non-unmarked or has
//      an outstanding mark task addressed to it,
//   2. marked(v) ⇒ no child of v is unmarked,
//   3. mt_cnt(v) equals the number of unreturned mark tasks spawned from v,
//      i.e. pending mark(·, par=v) + pending return(v) + transient vertices
//      whose mt_par is v.
//
// "children" is plane-dependent: args(v) for M_R; requested(v) ∪
// (args(v) − req-args(v)) for M_T. The checker runs between atomic task
// executions in the simulator, where global state is consistent.
#pragma once

#include <string>
#include <vector>

#include "core/marker.h"
#include "core/task.h"

namespace dgr {

struct InvariantReport {
  bool ok = true;
  std::string what;
};

InvariantReport check_marking_invariants(const Graph& g, const Marker& marker,
                                         Plane plane,
                                         const std::vector<Task>& pending);

// Property 1 accounting (GAR = V − R − F): verifies that the store partition
// the sweep relies on is intact at a safe point where M_R has terminated but
// restructuring has not yet consumed the marks:
//   - per-store slot accounting: capacity = live + free, and the free count
//     agrees with a direct scan of the slots;
//   - R ∩ F = ∅: no free slot carries a current-epoch R mark (a marked
//     vertex was never swept);
//   - `gar` is |{v live ∧ ¬aux ∧ ¬marked_R}|, the set the sweep must free —
//     callers cross-check it against CycleResult::swept after restructuring.
struct AccountingReport {
  bool ok = true;
  std::string what;
  std::size_t gar = 0;
  std::size_t live = 0;
  std::size_t free = 0;
  std::size_t marked = 0;
};

AccountingReport check_heap_accounting(const Graph& g, const Marker& marker);

}  // namespace dgr
