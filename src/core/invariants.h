// Runtime checker for the marking invariants of Hudak §5.4.1:
//
//   1. transient(v) ⇒ every child of v is covered: it is non-unmarked or has
//      an outstanding mark task addressed to it,
//   2. marked(v) ⇒ no child of v is unmarked,
//   3. mt_cnt(v) equals the number of unreturned mark tasks spawned from v,
//      i.e. pending mark(·, par=v) + pending return(v) + transient vertices
//      whose mt_par is v.
//
// "children" is plane-dependent: args(v) for M_R; requested(v) ∪
// (args(v) − req-args(v)) for M_T. The checker runs between atomic task
// executions in the simulator, where global state is consistent.
#pragma once

#include <string>
#include <vector>

#include "core/marker.h"
#include "core/task.h"

namespace dgr {

struct InvariantReport {
  bool ok = true;
  std::string what;
};

InvariantReport check_marking_invariants(const Graph& g, const Marker& marker,
                                         Plane plane,
                                         const std::vector<Task>& pending);

}  // namespace dgr
