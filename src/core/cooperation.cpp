#include "core/cooperation.h"

#include <algorithm>

#include "obs/trace.h"

namespace dgr {

void Mutator::delete_reference(VertexId a, VertexId b) {
  // "task-procedure delete-reference(a,b): disconnect(a,b);" — removal never
  // endangers marking (Fig 4-2): at worst an already-spawned mark task still
  // traces the removed subtree, which merely delays its collection one cycle.
  disconnect(g_, a, b);
}

void Mutator::add_reference(VertexId a, VertexId b, VertexId c, ReqKind k) {
  const VertexId chain[] = {a, b};
  add_reference_via(a, chain, c, k);
}

void Mutator::add_reference_via(VertexId a, std::span<const VertexId> chain,
                                VertexId c, ReqKind k) {
  DGR_ASSERT(!chain.empty() && chain.front() == a);
  if (!coop_) {
    connect(g_, a, c, k);
    return;
  }
  if (marker_.active(Plane::kR)) {
    const auto edge_prior = static_cast<std::uint8_t>(request_type(k));
    cooperate_new_edge(Plane::kR, a, chain, c, edge_prior);
  }
  // The new edge is a T-plane edge (a ↦ c) only when unrequested; requesting
  // edges instead add c ↦ a via requested(c), whose traceability is carried
  // by the accompanying request task (see DESIGN.md §4 and Mutator::request_arg).
  if (marker_.active(Plane::kT) && k == ReqKind::kNone) {
    cooperate_new_edge(Plane::kT, a, chain, c, 0);
  }
  if (compact_)
    compact_->on_new_edge(a, c, static_cast<std::uint8_t>(request_type(k)));
  connect(g_, a, c, k);
}

void Mutator::cooperate_new_edge(Plane plane, VertexId parent,
                                 std::span<const VertexId> chain, VertexId c,
                                 std::uint8_t edge_prior) {
  const Color pc = marker_.color(plane, parent);
  if (pc == Color::kUnmarked) return;  // parent not yet traced; c will be

  if (marker_.color(plane, c) != Color::kUnmarked) return;  // c already safe

  const std::uint8_t prior =
      plane == Plane::kR
          ? static_cast<std::uint8_t>(
                std::min<int>(marker_.prior(plane, parent), edge_prior))
          : 0;

  if (pc == Color::kTransient) {
    // Fig 4-2 first case: "spawn mark1(c,a); increment(mt-cnt(a))".
    marker_.open_count(plane, parent);
    marker_.spawn_mark(plane, c, parent, prior);
    return;
  }

  // parent is marked: splice below the deepest non-unmarked vertex h on the
  // access chain (Fig 4-2 second case generalizes b to h). Walking from the
  // deep end, everything below h is unmarked, so by invariant 2 h cannot be
  // marked — it must be transient, with an open mt_cnt to grow.
  for (std::size_t i = chain.size(); i-- > 0;) {
    const Color hc = marker_.color(plane, chain[i]);
    if (hc == Color::kUnmarked) continue;
    if (hc == Color::kTransient) {
      // "execute mark1(c,b); increment(mt-cnt(b))" — synchronous, so c is at
      // least transient before the marked parent points at it (invariant 2).
      marker_.open_count(plane, chain[i]);
      marker_.exec_mark_now(plane, c, chain[i], prior);
      return;
    }
    break;  // marked ancestor above an unmarked descendant: fall through
  }

  // No transient helper in scope. For M_R this would break the collector and
  // must be impossible with the reduction's mutation set; for M_T we flag the
  // cycle so the controller skips deadlock reporting (detection is allowed to
  // be occasional, §6) instead of risking a false positive.
  if (plane == Plane::kR) {
    DGR_CHECK_MSG(false, "add-reference: no transient helper for plane R");
  }
  DGR_TRACE_EVENT(trace_, obs::EventType::kCoopTaint, plane, parent.pe, 0);
  marker_.taint_cycle(plane);
}

void Mutator::expand_node(VertexId a, std::span<const VertexId> fresh) {
  if (!coop_) return;
  if (compact_)
    for (VertexId f : fresh) compact_->shade_fresh(a, f);
  for (const Plane plane : {Plane::kR, Plane::kT}) {
    if (!marker_.active(plane)) continue;
    // "if marked(a) then mark(g) else unmark(g)" (Fig 4-2). Transient
    // parents leave g unmarked too: the pending mark tasks guaranteed by
    // invariant 1 — or the edge-add cooperation that will wire a→g — trace it.
    const bool shade = marker_.color(plane, a) == Color::kMarked;
    const std::uint8_t prior = marker_.prior(plane, a);
    for (VertexId f : fresh) {
      if (shade) {
        marker_.shade_marked(plane, f);
        if (plane == Plane::kR) g_.at(f).plane(plane).prior = prior;
      } else {
        marker_.shade_unmarked(plane, f);
      }
    }
    if (shade) {
      // Marked fresh vertices must not point at unmarked non-fresh vertices
      // (invariant 2). Splice marking for any such edge, using a as the
      // chain anchor: a is marked, so the search inside cooperate_new_edge
      // immediately falls back to... a itself being the only chain element
      // would fail; callers needing deeper chains add references after
      // expand_node instead. Here we handle the common rewrite pattern where
      // fresh vertices reference current children of a.
      for (VertexId f : fresh) {
        for (const ArgEdge& e : g_.at(f).args) {
          if (!e.to.valid()) continue;
          if (std::find(fresh.begin(), fresh.end(), e.to) != fresh.end())
            continue;  // fresh→fresh: same shade
          if (plane == Plane::kT && e.req != ReqKind::kNone) continue;
          if (marker_.color(plane, e.to) == Color::kUnmarked) {
            const VertexId chain[] = {a};
            cooperate_new_edge(plane, f, chain, e.to,
                               plane == Plane::kR
                                   ? static_cast<std::uint8_t>(
                                         request_type(e.req))
                                   : 0);
          }
        }
      }
    }
  }
}

void Mutator::acquire_reference(VertexId x, VertexId c, ReqKind k) {
  if (!coop_) {
    connect(g_, x, c, k);
    return;
  }
  // Both planes need the new dependence covered: on kR the edge is an args
  // edge; on kT the edge is either a T-edge (unrequested) or carries a task
  // to c (requested) — in every case c must end the cycle marked if x does.
  // If x hasn't been traced yet, x's own trace covers c (requested edges via
  // the epoch stamp below); otherwise splice or queue a rescue.
  for (const Plane plane : {Plane::kR, Plane::kT}) {
    if (!marker_.active(plane)) continue;
    const Color xc = marker_.color(plane, x);
    if (xc == Color::kUnmarked) continue;
    if (marker_.color(plane, c) != Color::kUnmarked) continue;
    const std::uint8_t prior =
        plane == Plane::kR
            ? static_cast<std::uint8_t>(
                  std::min<int>(marker_.prior(plane, x), request_type(k)))
            : 0;
    if (xc == Color::kTransient) {
      marker_.open_count(plane, x);
      marker_.spawn_mark(plane, c, x, prior);
    } else {
      DGR_TRACE_EVENT(trace_, obs::EventType::kRescueQueued, plane, c.pe, 0,
                      c.pack());
      marker_.rescue(plane, c, prior ? prior : std::uint8_t{1});
    }
  }
  if (compact_)
    compact_->on_new_edge(x, c, static_cast<std::uint8_t>(request_type(k)));
  connect(g_, x, c, k);
  if (k != ReqKind::kNone) stamp_request_epoch(g_.at(x).args.back());
}

void Mutator::request_arg(VertexId x, VertexId y, ReqKind k) {
  DGR_CHECK(k != ReqKind::kNone);
  // R-plane: args(x) unchanged, only the edge's request-type rises — priority
  // refinement waits for the next cycle (§5.3 option (b)).
  set_request(g_, x, y, k);
  Vertex& vx = g_.at(x);
  const int i = vx.arg_index(y);
  DGR_CHECK(i >= 0);
  stamp_request_epoch(vx.args[static_cast<std::size_t>(i)]);
}

void Mutator::request_arg_at(VertexId x, std::size_t arg_idx, ReqKind k) {
  DGR_CHECK(k != ReqKind::kNone);
  set_request_at(g_, x, arg_idx, k);
  stamp_request_epoch(g_.at(x).args[arg_idx]);
}

void Mutator::stamp_request_epoch(ArgEdge& e) {
  if (!transit_) return;
  // T-plane bookkeeping: an edge requested while the M_T wave is in flight
  // was unrequested at the snapshot instant, so mark3 must still trace it
  // (see ArgEdge::req_epoch). Stamping only during an in-progress wave keeps
  // pre-existing requests — e.g. a deadlocked vertex's stale vital edges —
  // invisible to M_T, preserving deadlock-detection precision.
  if (marker_.marking_in_progress(Plane::kT))
    e.req_epoch = marker_.epoch(Plane::kT);
}

void Mutator::dereference_at(VertexId x, std::size_t arg_idx) {
  // Dropping x from requested(y) mid-wave would erase a snapshot ↦-edge;
  // preserve it as a stale waiter.
  const ArgEdge& e = g_.at(x).args[arg_idx];
  if (e.req != ReqKind::kNone) record_stale_waiter(e.to, x);
  disconnect_at(g_, x, arg_idx);
}

void Mutator::record_stale_waiter(VertexId v, VertexId waiter) {
  if (!transit_) return;
  if (!waiter.valid()) return;
  if (!marker_.marking_in_progress(Plane::kT)) return;
  g_.at(v).stale_requested.push_back(waiter);
}

void Mutator::delete_reference_at(VertexId x, std::size_t arg_idx) {
  disconnect_at(g_, x, arg_idx);
}

void Mutator::upgrade_to_vital(VertexId x, VertexId y) {
  set_request(g_, x, y, ReqKind::kVital);
}

void Mutator::dereference(VertexId x, VertexId y) {
  // §3.2: remove y from req-args_e(x) and x from requested(y); we also drop
  // the data edge so an unneeded subcomputation actually becomes garbage
  // (otherwise it would linger as a reserve dependency).
  disconnect(g_, x, y);
}

void Mutator::reply(VertexId y, VertexId x, const Value& val) {
  reply_to(g_, y, x, val);
}

}  // namespace dgr
