// Cycle driver for the §6 compact marking variant: wave (plus supplementary
// waves for the cooperation queue) → restructuring. GC, irrelevant-task
// expunging and re-prioritization only — deadlock detection needs M_T and
// stays with the tree marker (§6: M_T runs only occasionally anyway).
#pragma once

#include <cstdint>

#include "core/compact_marker.h"
#include "core/controller.h"

namespace dgr {

struct CompactCycleResult {
  std::uint64_t cycle = 0;
  std::size_t swept = 0;
  std::size_t expunged = 0;
  std::size_t reprioritized = 0;
  CompactStats stats;
};

class CompactCollector {
 public:
  CompactCollector(Graph& g, CompactMarker& marker, EngineHooks& hooks,
                   VertexId root);

  void set_root(VertexId root) { root_ = root; }
  void start_cycle();
  bool idle() const { return idle_; }

  const CompactCycleResult& last() const { return last_; }
  std::uint64_t cycles_completed() const { return cycles_; }
  std::uint64_t total_swept() const { return total_swept_; }

 private:
  void on_wave_done();
  void restructure();

  Graph& g_;
  CompactMarker& marker_;
  EngineHooks& hooks_;
  VertexId root_;
  bool idle_ = true;
  CompactCycleResult last_;
  std::uint64_t cycles_ = 0;
  std::uint64_t total_swept_ = 0;
};

}  // namespace dgr
