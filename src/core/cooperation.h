// Cooperating mutator primitives (Hudak §4.2, Fig 4-2).
//
// All connectivity mutations performed while a marking phase may be active
// MUST go through this class. Each primitive splices extra marking activity
// into the marking tree so that the marking invariants (§5.4.1) hold:
//
//   1. every transient vertex has ≥1 outstanding mark task per child,
//   2. a marked vertex never points to an unmarked vertex,
//   3. mt_cnt(v) counts exactly the unreturned mark tasks spawned from v.
//
// The paper states the primitives for the basic marker; here each primitive
// cooperates with BOTH planes, because M_R and M_T trace different edge sets:
//   plane kR edges:  args(v)                                   (all of them)
//   plane kT edges:  requested(v) ∪ (args(v) − req-args(v))
//
// The paper's add-reference(a,b,c) assumes c is reachable from a through a
// single intermediate b. Real reductions (e.g. the S-combinator rewrite)
// attach grandchildren of the spine, so we generalize: the caller passes the
// current access chain from the new parent down to c; cooperation finds the
// deepest non-unmarked ancestor h on that chain. By invariant 2, if any
// ancestor is non-unmarked while c is unmarked, h is transient, and marking
// activity can be spliced below h exactly as Fig 4-2 does with b.
#pragma once

#include <span>
#include <vector>

#include "core/compact_marker.h"
#include "core/marker.h"
#include "graph/graph.h"

namespace dgr {

class Mutator {
 public:
  Mutator(Graph& g, Marker& marker) : g_(g), marker_(marker) {}

  // Route cooperation to the §6 compact marker as well (both collectors can
  // be wired; each consults only its own activity flag).
  void set_compact_marker(CompactMarker* cm) { compact_ = cm; }

  // Observability: emit cooperation events (rescue queueing, cycle taints)
  // into `t` (nullptr disables).
  void set_trace(obs::TraceBuffer* t) { trace_ = t; }

  // ---- Ablation switches (benchmarks only). ----
  // Disables the Fig 4-2 splicing (add/expand/acquire degrade to raw
  // connectivity changes): reproduces the §4.2 failure mode at scale.
  void set_cooperation_enabled(bool on) { coop_ = on; }
  // Disables the in-transit accounting (epoch stamps, stale waiters):
  // reproduces false deadlock reports under concurrent reduction.
  void set_transit_accounting(bool on) { transit_ = on; }

  // ---- The paper's three primitives (Fig 4-2). ----

  // delete-reference(a,b): remove b from args(a). Never needs marking help
  // (dropping edges cannot unmark; over-marking is resolved next cycle).
  void delete_reference(VertexId a, VertexId b);

  // add-reference(a,b,c): connect c to a, where b ∈ children(a) and
  // c ∈ children(b) — the exact form in the paper. `k` is the request kind
  // of the new edge.
  void add_reference(VertexId a, VertexId b, VertexId c, ReqKind k);

  // Generalized add-reference: connect c to a where `chain` is the current
  // access path a = chain[0] → chain[1] → ... → c (c excluded). Must hold:
  // each chain[i+1] ∈ children(chain[i]) and c ∈ children(chain.back()).
  void add_reference_via(VertexId a, std::span<const VertexId> chain,
                         VertexId c, ReqKind k);

  // expand-node(a, g): splice freshly allocated vertices below a. The
  // vertices in `fresh` must have just been taken from the free list, with
  // their own args already wired (only to each other or to vertices
  // currently reachable from a). Edges from a to entry vertices of the
  // subgraph must be added afterwards with add_reference_via / connect_root.
  // Shades the fresh vertices per a's color in both planes (Fig 4-2).
  void expand_node(VertexId a, std::span<const VertexId> fresh);

  // ---- Request-state mutations (§3.2 / §5.3). ----

  // Acquired reference: x gains an edge to c that arrived as a node VALUE
  // (a cons cell or list field handed over by a reply) rather than through a
  // traversable access chain. The sender's retained edges guarantee c stays
  // reachable, but no chain is available for Fig 4-2's splice, so:
  //   x unmarked   → nothing (x's own trace will find c),
  //   x transient  → spawn mark(c,x) and open x's count (invariant 1),
  //   x marked     → queue c for the plane's supplementary rescue wave.
  // Applies to both planes; the new edge is requested with strength k and
  // epoch-stamped for the in-transit rule.
  void acquire_reference(VertexId x, VertexId c, ReqKind k);

  // x requests the value of existing arg y with strength k (kNone→k).
  // T-plane connectivity changes (x↦y removed, y↦x added) are covered by
  // task reachability of the accompanying request task; see DESIGN.md.
  void request_arg(VertexId x, VertexId y, ReqKind k);
  // Index-based variants (duplicate-edge-safe).
  void request_arg_at(VertexId x, std::size_t arg_idx, ReqKind k);
  void dereference_at(VertexId x, std::size_t arg_idx);
  void delete_reference_at(VertexId x, std::size_t arg_idx);

  // Priority upgrade eager→vital: deferred to the next marking cycle
  // (the paper's §5.3 option (b)); pure bookkeeping here.
  void upgrade_to_vital(VertexId x, VertexId y);

  // Dereference (§3.2): x abandons its eager request of y — y is removed
  // from req-args_e(x) AND from args(x), and x from requested(y). Tasks in
  // the abandoned subcomputation become irrelevant and are expunged by the
  // next restructuring phase.
  void dereference(VertexId x, VertexId y);

  // y replies to requester x with val: x's edge reverts to unrequested
  // (the request is complete), val recorded on the edge.
  void reply(VertexId y, VertexId x, const Value& val);

  Marker& marker() { return marker_; }

 private:
  // Per-plane cooperation for a new edge parent→c whose access chain is
  // `chain` (parent first). Applies Fig 4-2's case analysis.
  void cooperate_new_edge(Plane plane, VertexId parent,
                          std::span<const VertexId> chain, VertexId c,
                          std::uint8_t edge_prior);

  // Tag an edge just requested while the M_T wave is in flight (in-transit
  // accounting; see ArgEdge::req_epoch).
  void stamp_request_epoch(ArgEdge& e);

 public:
  // Record waiters that v is about to drop from requested(v) (reply or
  // dereference). While an M_T wave is in flight they move to
  // stale_requested(v) so the snapshot's ↦-edges survive until traced.
  void record_stale_waiter(VertexId v, VertexId waiter);

 private:

  Graph& g_;
  Marker& marker_;
  CompactMarker* compact_ = nullptr;
  obs::TraceBuffer* trace_ = nullptr;
  bool coop_ = true;
  bool transit_ = true;
};

}  // namespace dgr
