// Stop-the-world baseline collector (E9).
//
// What any system without the paper's concurrent marker must do: halt all
// reduction, mark synchronously from the root, sweep, resume. Used by the
// benches to measure the pause-time / throughput cost that the decentralized
// on-the-fly algorithm removes. The pause is reported in vertex-visit work
// units — the same unit as one marking-task execution in the simulator — so
// the comparison is like-for-like.
#pragma once

#include <cstdint>
#include <vector>

#include "graph/graph.h"

namespace dgr {

struct StwResult {
  std::size_t marked = 0;
  std::size_t swept = 0;
  // Work performed while the world is stopped: vertex visits + edge scans.
  std::uint64_t pause_work = 0;
};

class StwCollector {
 public:
  explicit StwCollector(Graph& g) : g_(g) {}

  // Synchronous mark (from root, through args) + sweep. The caller must have
  // stopped all mutation for the duration — that's the point.
  StwResult collect(VertexId root);

  std::uint64_t total_pause_work() const { return total_pause_; }
  std::uint64_t collections() const { return collections_; }

 private:
  Graph& g_;
  std::uint64_t epoch_ = 0;
  std::vector<std::vector<std::uint64_t>> mark_;
  std::uint64_t total_pause_ = 0;
  std::uint64_t collections_ = 0;
};

}  // namespace dgr
