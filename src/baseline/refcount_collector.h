// Distributed reference-counting baseline (E10).
//
// The alternative the paper argues against (§4): "reference counting has
// particular deficiencies that make it unsuitable for our purposes, such as
// the inability to reclaim self-referencing structures, and the inability to
// perform the tracing necessary to identify task types."
//
// Every connect sends an increment message to the target's owner; every
// disconnect a decrement. A count reaching zero releases the vertex and
// cascades decrements to its children. Cross-PE count traffic is tallied so
// benches can compare it against the marker's message volume, and leaked
// (cyclic) garbage is measured against the reachability oracle.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "graph/graph.h"

namespace dgr {

class RefCountCollector {
 public:
  explicit RefCountCollector(Graph& g);

  // Mutation notifications. The caller performs the graph mutation itself;
  // these maintain the counts (and model the count-message traffic).
  void on_alloc(VertexId v);
  void on_connect(VertexId from, VertexId to);
  void on_disconnect(VertexId from, VertexId to);
  // External (root) references, e.g. the computation root.
  void add_root_ref(VertexId v);
  void drop_root_ref(VertexId v);

  // Drain pending decrement messages, cascading releases. Returns the number
  // of vertices freed by this drain.
  std::size_t process();

  std::uint32_t count(VertexId v) const { return counts_[v.pe][v.idx]; }

  std::uint64_t freed() const { return freed_; }
  std::uint64_t messages_sent() const { return msgs_; }
  std::uint64_t remote_messages() const { return remote_msgs_; }

 private:
  void ensure(VertexId v);
  void send_dec(PeId from_pe, VertexId to);

  Graph& g_;
  std::vector<std::vector<std::uint32_t>> counts_;
  std::deque<VertexId> pending_dec_;
  std::uint64_t freed_ = 0;
  std::uint64_t msgs_ = 0;
  std::uint64_t remote_msgs_ = 0;
};

}  // namespace dgr
