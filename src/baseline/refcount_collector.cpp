#include "baseline/refcount_collector.h"

namespace dgr {

RefCountCollector::RefCountCollector(Graph& g) : g_(g) {
  counts_.resize(g.num_pes());
}

void RefCountCollector::ensure(VertexId v) {
  auto& c = counts_[v.pe];
  if (v.idx >= c.size()) c.resize(v.idx + 1, 0);
}

void RefCountCollector::on_alloc(VertexId v) {
  ensure(v);
  counts_[v.pe][v.idx] = 0;
}

void RefCountCollector::on_connect(VertexId from, VertexId to) {
  ensure(to);
  ++counts_[to.pe][to.idx];
  ++msgs_;
  if (from.pe != to.pe) ++remote_msgs_;
}

void RefCountCollector::on_disconnect(VertexId from, VertexId to) {
  send_dec(from.pe, to);
}

void RefCountCollector::add_root_ref(VertexId v) {
  ensure(v);
  ++counts_[v.pe][v.idx];
}

void RefCountCollector::drop_root_ref(VertexId v) { send_dec(v.pe, v); }

void RefCountCollector::send_dec(PeId from_pe, VertexId to) {
  ++msgs_;
  if (from_pe != to.pe) ++remote_msgs_;
  pending_dec_.push_back(to);
}

std::size_t RefCountCollector::process() {
  std::size_t freed_now = 0;
  while (!pending_dec_.empty()) {
    const VertexId v = pending_dec_.front();
    pending_dec_.pop_front();
    ensure(v);
    std::uint32_t& c = counts_[v.pe][v.idx];
    DGR_CHECK_MSG(c > 0, "reference count underflow");
    if (--c > 0) continue;
    if (g_.is_free(v)) continue;
    // Cascade: the dying vertex drops its references.
    for (const ArgEdge& e : g_.at(v).args) {
      if (e.to.valid()) send_dec(v.pe, e.to);
    }
    g_.store(v.pe).release(v.idx);
    ++freed_;
    ++freed_now;
  }
  return freed_now;
}

}  // namespace dgr
