#include "baseline/stw_collector.h"

#include <deque>

namespace dgr {

StwResult StwCollector::collect(VertexId root) {
  StwResult res;
  ++collections_;
  ++epoch_;
  mark_.resize(g_.num_pes());
  for (PeId pe = 0; pe < g_.num_pes(); ++pe)
    mark_[pe].resize(g_.store(pe).capacity(), 0);

  std::deque<VertexId> work;
  auto visit = [&](VertexId v) {
    if (!v.valid() || g_.is_free(v)) return;
    if (v.idx >= mark_[v.pe].size()) mark_[v.pe].resize(v.idx + 1, 0);
    if (mark_[v.pe][v.idx] == epoch_) return;
    mark_[v.pe][v.idx] = epoch_;
    work.push_back(v);
  };
  if (root.valid() && !g_.is_free(root)) visit(root);
  while (!work.empty()) {
    const VertexId v = work.front();
    work.pop_front();
    ++res.marked;
    ++res.pause_work;
    for (const ArgEdge& e : g_.at(v).args) {
      ++res.pause_work;
      visit(e.to);
    }
  }

  // Sweep, also under the pause.
  std::vector<VertexId> dead;
  g_.for_each_live([&](VertexId v) {
    ++res.pause_work;
    if (mark_[v.pe][v.idx] != epoch_) dead.push_back(v);
  });
  for (VertexId w : dead) {
    for (const ArgEdge& e : g_.at(w).args) {
      if (e.req == ReqKind::kNone || !e.to.valid()) continue;
      g_.at(e.to).drop_requester(w);
    }
  }
  for (VertexId w : dead) g_.store(w.pe).release(w.idx);
  res.swept = dead.size();
  total_pause_ += res.pause_work;
  return res;
}

}  // namespace dgr
