// A tiny first-order functional language, the source form for reduction
// workloads:
//
//   def fib(n) = if n < 2 then n else fib(n-1) + fib(n-2);
//   def main() = fib(15);
//
// Expressions: integer/boolean literals, variables, binary operators
// (+ - * / % == != < <= > >= and or), not, unary minus, if/then/else,
// (recursive) let-in, and first-order function calls. `let` is letrec: the
// bound name is visible in its own definition, which is how self-dependent
// (deadlocking, Fig 3-1) and cyclic graphs arise from real programs.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "graph/opcode.h"

namespace dgr::lang {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class ExprKind : std::uint8_t {
  kNum,   // num
  kBool,  // num (0/1)
  kVar,   // name
  kBin,   // op, kids[0], kids[1]
  kNot,   // kids[0]
  kIf,    // kids[0..2]
  kLet,   // name, kids[0] = bound, kids[1] = body
  kCall,  // name, kids = actuals
};

struct Expr {
  ExprKind kind;
  std::int64_t num = 0;
  std::string name;
  OpCode op = OpCode::kData;  // for kBin
  std::vector<ExprPtr> kids;
};

struct Def {
  std::string name;
  std::vector<std::string> params;
  ExprPtr body;
};

struct ProgramAst {
  std::vector<Def> defs;
};

class ParseError : public std::runtime_error {
 public:
  ParseError(const std::string& msg, std::size_t line, std::size_t col)
      : std::runtime_error(msg + " at " + std::to_string(line) + ":" +
                           std::to_string(col)),
        line(line),
        col(col) {}
  std::size_t line, col;
};

// Parse a full program (one or more defs). Throws ParseError.
ProgramAst parse_program(const std::string& src);

// Parse a single expression (for tests / quick evaluation); wrapped by the
// caller into a def as needed.
ExprPtr parse_expression(const std::string& src);

// Render an expression back to source (round-trip debugging aid).
std::string to_string(const Expr& e);

}  // namespace dgr::lang
