// The distributed demand-driven reduction machine.
//
// Implements the paper's reduction process over the operator graph (§2.1):
// a strict vertex v requests the values of its args by spawning tasks
// <v, d_i> (recorded in req-args_v(v) and requested(d_i)); values "return"
// as tasks <d_i, v>; and function invocation splices a fresh template
// instance below the call vertex (expand-node).
//
// Speculation (§3.2): with speculate_if on, a conditional eagerly requests
// both branches (req-args_e) while the predicate is computed vitally. When
// the predicate resolves, the taken branch is upgraded to vital and the
// untaken one dereferenced — orphaning any still-running speculative tasks,
// which the marking cycle later classifies irrelevant and expunges.
//
// All graph mutations go through the cooperating mutator primitives, so
// reduction can run concurrently with marking.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>

#include "core/cooperation.h"
#include "core/task.h"
#include "reduction/program.h"

namespace dgr {

// Instance-vertex placement policy — the reduction machine's analogue of
// graph/partitioner.h (template instances are allocated online, so placement
// is a streaming decision rather than an offline assignment).
enum class Placement : std::uint8_t {
  kScatter,  // each template node round-robins across PEs (maximal cut)
  kHome,     // every instance node on the call vertex's PE (zero spread)
  kChunk,    // one PE per instantiation, round-robin — greedy locality:
             // intra-instance edges never cross a PE, instances balance
};

const char* placement_name(Placement p);
// Accepts "scatter"/"rr", "home", "chunk"/"greedy". Returns false otherwise.
bool parse_placement(const char* name, Placement* out);

struct MachineOptions {
  // Eagerly request both branches of every `if` (the paper's eager tasks).
  bool speculate_if = false;
  // Where freshly instantiated template nodes land (see Placement).
  Placement placement = Placement::kScatter;
};

struct MachineStats {
  std::uint64_t requests = 0;
  std::uint64_t returns = 0;
  std::uint64_t evals = 0;
  std::uint64_t instantiations = 0;
  std::uint64_t vertices_allocated = 0;
  std::uint64_t prim_results = 0;
  std::uint64_t if_resolutions = 0;
  std::uint64_t speculative_requests = 0;
  std::uint64_t dereferences = 0;
  std::uint64_t alloc_failures = 0;
};

class Machine {
 public:
  Machine(Graph& g, Mutator& mut, TaskSink& sink, Program prog,
          MachineOptions opt = {});

  // Allocate a call vertex for a zero-argument function (default "main") on
  // `pe`. Returns the vertex; demand() starts evaluation.
  VertexId load_main(PeId pe = 0, const std::string& fn = "main");

  // External demand for v's value (the initial <-,root> task).
  void demand(VertexId v, ReqKind k = ReqKind::kVital);

  // Reduction-task executor; wire into SimEngine::set_reducer.
  void exec(const Task& t);

  // Value of an externally demanded vertex, once computed.
  std::optional<Value> result_of(VertexId v) const;

  bool has_error() const { return !error_.empty(); }
  const std::string& error() const { return error_; }

  const MachineStats& stats() const { return stats_; }

  // Invoked when instantiation fails for want of free vertices (fixed
  // capacity); typically wired to "start a GC cycle".
  void set_exhaustion_handler(std::function<void()> fn) {
    on_exhaustion_ = std::move(fn);
  }

  // Debug hook: invoked on every vertex completion.
  using TraceFn = std::function<void(VertexId, OpCode, const Value&)>;
  void set_trace(TraceFn fn) { trace_ = std::move(fn); }
  // Debug hook: list-accessor field acquisition (accessor, cell, field).
  using AcquireTraceFn = std::function<void(VertexId, VertexId, VertexId)>;
  void set_acquire_trace(AcquireTraceFn fn) { acq_trace_ = std::move(fn); }
  // Debug hook: every executed return (destination, sender, value).
  using ReturnTraceFn = std::function<void(VertexId, VertexId, const Value&)>;
  void set_return_trace(ReturnTraceFn fn) { ret_trace_ = std::move(fn); }

 private:
  // Pool priority for a task addressed to d: the inherited priority boosted
  // by d's marked priority from the most recent M_R pass — the paper's
  // dynamic prioritization applied to freshly spawned tasks, not only
  // pooled ones (otherwise a vitally-upgraded chain advances one level per
  // collection cycle while stale eager work drowns it).
  std::uint8_t pool_prio(VertexId d, std::uint8_t inherited) const;

  void exec_request(const Task& t);
  void exec_return(const Task& t);
  void exec_eval(VertexId v, std::uint8_t prio);

  void eval_dispatch(VertexId v, std::uint8_t prio);
  void instantiate(VertexId v, std::uint8_t prio);
  void resolve_if(VertexId v, std::uint8_t prio);
  void step_list_accessor(VertexId v, std::uint8_t prio);
  void try_finish_prim(VertexId v);
  void complete(VertexId v, const Value& val);
  void runtime_error(VertexId v, const std::string& msg);

  PeId pick_pe(PeId home);

  Graph& g_;
  Mutator& mut_;
  TaskSink& sink_;
  Program prog_;
  MachineOptions opt_;
  MachineStats stats_;
  std::string error_;
  std::function<void()> on_exhaustion_;
  TraceFn trace_;
  AcquireTraceFn acq_trace_;
  ReturnTraceFn ret_trace_;
  std::unordered_map<std::uint64_t, Value> external_;
  std::uint64_t rr_ = 0;
};

}  // namespace dgr
