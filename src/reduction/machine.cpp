#include "reduction/machine.h"

#include <string_view>

#include "util/log.h"

namespace dgr {

Machine::Machine(Graph& g, Mutator& mut, TaskSink& sink, Program prog,
                 MachineOptions opt)
    : g_(g), mut_(mut), sink_(sink), prog_(std::move(prog)), opt_(opt) {}

VertexId Machine::load_main(PeId pe, const std::string& fn) {
  const std::uint32_t id = prog_.fn_id(fn);
  DGR_CHECK_MSG(prog_.fn(id).nparams == 0,
                "entry function must take no parameters");
  const VertexId v = g_.alloc(pe, OpCode::kCall);
  DGR_CHECK_MSG(v.valid(), "no free vertices for the entry call");
  g_.at(v).fn_id = id;
  return v;
}

void Machine::demand(VertexId v, ReqKind k) {
  g_.at(v).requested.push_back(VertexId::invalid());
  Task t = Task::request(VertexId::invalid(), v, k);
  sink_.spawn(std::move(t));
}

std::optional<Value> Machine::result_of(VertexId v) const {
  auto it = external_.find(v.pack());
  if (it == external_.end()) return std::nullopt;
  return it->second;
}

void Machine::exec(const Task& t) {
  switch (t.kind) {
    case TaskKind::kRequest: exec_request(t); return;
    case TaskKind::kReturnVal: exec_return(t); return;
    case TaskKind::kEval: exec_eval(t.d, t.pool_prior); return;
    default: DGR_CHECK_MSG(false, "non-reduction task routed to Machine");
  }
}

std::uint8_t Machine::pool_prio(VertexId d, std::uint8_t inherited) const {
  return std::max(inherited, mut_.marker().prior(Plane::kR, d));
}

void Machine::exec_request(const Task& t) {
  ++stats_.requests;
  Vertex& v = g_.at(t.d);
  if (v.value.defined()) {
    // Reply immediately — but only if this requester is still registered.
    // A request issued BEFORE completion was already answered by complete()
    // through requested(v); answering its (still pooled) request task again
    // would deliver a duplicate return.
    if (v.has_requester(t.s)) {
      v.drop_requester(t.s);
      mut_.record_stale_waiter(t.d, t.s);
      if (t.s.valid()) {
        sink_.spawn(Task::return_val(t.d, t.s, v.value, t.pool_prior));
      } else {
        external_[t.d.pack()] = v.value;
      }
    }
    return;
  }
  if (!v.evaluating) {
    v.evaluating = true;
    sink_.spawn(Task::eval(t.d, pool_prio(t.d, t.pool_prior)));
  }
  // Already evaluating: completion will reply to every waiter in
  // requested(v).
}

void Machine::exec_eval(VertexId vid, std::uint8_t prio) {
  ++stats_.evals;
  Vertex& v = g_.at(vid);
  if (v.value.defined()) return;  // stale work item
  eval_dispatch(vid, prio);
}

void Machine::eval_dispatch(VertexId vid, std::uint8_t prio) {
  Vertex& v = g_.at(vid);
  switch (v.op) {
    case OpCode::kLit:
      complete(vid, v.value);
      return;
    case OpCode::kCall:
      instantiate(vid, prio);
      return;
    case OpCode::kCons:
      // A cons cell is already in WHNF; its fields stay lazy, unrequested
      // args — the paper's "reserve" dependencies.
      DGR_CHECK_MSG(v.args.size() == 2, "malformed cons cell");
      complete(vid, Value::of_node(vid));
      return;
    case OpCode::kNil:
      complete(vid, Value::nil());
      return;
    case OpCode::kHead:
    case OpCode::kTail:
    case OpCode::kIsNil:
      // Strict in the cell: request it, then (for head/tail) acquire the
      // field reference from the returned node value.
      DGR_CHECK_MSG(v.args.size() == 1, "malformed list accessor");
      mut_.request_arg_at(vid, 0, ReqKind::kVital);
      {
        const VertexId dst = g_.at(vid).args[0].to;
        Task t = Task::request(vid, dst, ReqKind::kVital);
        t.pool_prior = pool_prio(dst, prio);
        sink_.spawn(std::move(t));
      }
      return;
    case OpCode::kIf: {
      DGR_CHECK_MSG(v.args.size() == 3, "malformed if vertex");
      // Predicate is vitally requested; branches eagerly when speculating
      // (§3.2: eager tasks "compete" with vital ones).
      mut_.request_arg_at(vid, 0, ReqKind::kVital);
      sink_.spawn(Task::request(vid, v.args[0].to, ReqKind::kVital));
      if (opt_.speculate_if) {
        for (std::size_t i : {std::size_t{1}, std::size_t{2}}) {
          mut_.request_arg_at(vid, i, ReqKind::kEager);
          Task t = Task::request(vid, g_.at(vid).args[i].to, ReqKind::kEager);
          t.pool_prior = 2;
          sink_.spawn(std::move(t));
          ++stats_.speculative_requests;
        }
      }
      return;
    }
    default:
      break;
  }
  DGR_CHECK_MSG(op_is_strict_prim(v.op), "unevaluable vertex opcode");
  DGR_CHECK(!op_is_list(v.op));
  DGR_CHECK_MSG(static_cast<int>(v.args.size()) == op_arity(v.op),
                "operand count mismatch");
  // §2.1: "the execution of a task <s,v> ... spawning tasks <v,d1> and
  // <v,d2>" — strict operands are vitally requested.
  const std::size_t n = v.args.size();
  for (std::size_t i = 0; i < n; ++i) {
    mut_.request_arg_at(vid, i, ReqKind::kVital);
    const VertexId dst = g_.at(vid).args[i].to;
    Task t = Task::request(vid, dst, ReqKind::kVital);
    t.pool_prior = pool_prio(dst, prio);
    sink_.spawn(std::move(t));
  }
}

void Machine::instantiate(VertexId vid, std::uint8_t prio) {
  const Template& tpl = prog_.fn(g_.at(vid).fn_id);
  DGR_CHECK_MSG(g_.at(vid).args.size() == tpl.nparams,
                "call arity mismatch at runtime");
  std::vector<VertexId> actuals;
  actuals.reserve(tpl.nparams);
  for (const ArgEdge& e : g_.at(vid).args) actuals.push_back(e.to);

  if (tpl.root.is_param) {
    // Body is a bare parameter: the vertex forwards that actual's value.
    g_.at(vid).op = OpCode::kId;
    const VertexId kept = actuals[tpl.root.idx];
    const VertexId chain[] = {vid};
    mut_.add_reference_via(vid, chain, kept, ReqKind::kNone);
    for (std::uint32_t i = 0; i < tpl.nparams; ++i)
      mut_.delete_reference_at(vid, 0);
    ++stats_.instantiations;
    eval_dispatch(vid, prio);
    return;
  }

  // Allocate fresh vertices for every node except the root, which is
  // rewritten into the call vertex itself.
  const std::uint32_t root_idx = tpl.root.idx;
  std::vector<VertexId> node_vid(tpl.nodes.size(), VertexId::invalid());
  std::vector<VertexId> fresh;
  fresh.reserve(tpl.nodes.size());
  // kChunk picks the instance's PE once, up front; the other policies
  // decide per node inside pick_pe.
  const PeId home = opt_.placement == Placement::kChunk
                        ? static_cast<PeId>(rr_++ % g_.num_pes())
                        : vid.pe;
  bool failed = false;
  for (std::uint32_t i = 0; i < tpl.nodes.size(); ++i) {
    if (i == root_idx) {
      node_vid[i] = vid;
      continue;
    }
    const VertexId f = g_.alloc(pick_pe(home), tpl.nodes[i].op);
    if (!f.valid()) {
      failed = true;
      break;
    }
    node_vid[i] = f;
    fresh.push_back(f);
  }
  if (failed) {
    // Local store exhausted: roll back and retry after a collection cycle.
    for (VertexId f : fresh) g_.store(f.pe).release(f.idx);
    ++stats_.alloc_failures;
    sink_.spawn(Task::eval(vid, prio));
    if (on_exhaustion_) on_exhaustion_();
    return;
  }
  stats_.vertices_allocated += fresh.size();

  // Wire the fresh (non-root) nodes: fresh→fresh and fresh→actual edges are
  // raw connects — the instance is invisible until spliced.
  for (std::uint32_t i = 0; i < tpl.nodes.size(); ++i) {
    if (i == root_idx) continue;
    const TNode& n = tpl.nodes[i];
    Vertex& f = g_.at(node_vid[i]);
    f.fn_id = n.fn_id;
    if (n.op == OpCode::kLit)
      f.value = n.lit_is_bool ? Value::of_bool(n.lit != 0)
                              : Value::of_int(n.lit);
    for (const TRef& c : n.children) {
      const VertexId to = c.is_param ? actuals[c.idx] : node_vid[c.idx];
      connect(g_, node_vid[i], to, ReqKind::kNone);
    }
  }

  // expand-node (Fig 4-2): shade the fresh subgraph per the call vertex's
  // marking state in both planes.
  mut_.expand_node(vid, fresh);

  // The call vertex becomes the instance's root operator: append the root's
  // edges (cooperatively), then drop the actual-argument edges.
  const TNode& root = tpl.nodes[root_idx];
  {
    Vertex& v = g_.at(vid);
    v.op = root.op;
    v.fn_id = root.fn_id;
    if (root.op == OpCode::kLit)
      v.value = root.lit_is_bool ? Value::of_bool(root.lit != 0)
                                 : Value::of_int(root.lit);
  }
  for (const TRef& c : root.children) {
    const VertexId to = c.is_param ? actuals[c.idx] : node_vid[c.idx];
    const VertexId chain[] = {vid};
    mut_.add_reference_via(vid, chain, to, ReqKind::kNone);
  }
  for (std::uint32_t i = 0; i < tpl.nparams; ++i)
    mut_.delete_reference_at(vid, 0);
  ++stats_.instantiations;

  if (g_.at(vid).op == OpCode::kLit) {
    complete(vid, g_.at(vid).value);
  } else {
    // Re-dispatch as a fresh task so unbounded call chains (deliberately
    // non-terminating programs) yield an endless task stream rather than an
    // endless atomic step — those tasks are what restructuring expunges.
    sink_.spawn(Task::eval(vid, prio));
  }
}

void Machine::exec_return(const Task& t) {
  ++stats_.returns;
  Vertex& v = g_.at(t.d);
  if (ret_trace_) ret_trace_(t.d, t.s, t.value);
  // A return can race a completion that no longer needs it (e.g. a
  // speculative reply after the consumer resolved another way); it must
  // never re-trigger evaluation logic on a finished vertex.
  if (v.value.defined()) return;
  // Record the value on the first pending edge to the sender; the sender
  // already dropped us from its requested set when it replied.
  for (ArgEdge& e : v.args) {
    if (e.to == t.s && e.req != ReqKind::kNone && !e.value.defined()) {
      e.value = t.value;
      e.req = ReqKind::kNone;
      break;
    }
  }
  switch (v.op) {
    case OpCode::kIf:
      if (v.args.size() == 3 && v.args[0].value.defined()) {
        resolve_if(t.d, t.pool_prior);
      } else if (v.args.size() == 1 && v.args[0].value.defined()) {
        complete(t.d, v.args[0].value);  // chosen branch's value arrived
      }
      return;
    case OpCode::kIsNil: {
      const Value& cv = v.args[0].value;
      if (!cv.defined()) return;
      if (!cv.is_node() && !cv.is_nil()) {
        runtime_error(t.d, "isnil of a non-list");
        return;
      }
      complete(t.d, Value::of_bool(cv.is_nil()));
      return;
    }
    case OpCode::kHead:
    case OpCode::kTail:
      step_list_accessor(t.d, t.pool_prior);
      return;
    default:
      if (op_is_strict_prim(v.op)) {
        try_finish_prim(t.d);
        return;
      }
      // Return raced with a dereference or arrived at a rewritten vertex:
      // drop it (its value, if still wanted, is re-requestable).
      return;
  }
}

void Machine::resolve_if(VertexId vid, std::uint8_t prio) {
  Vertex& v = g_.at(vid);
  const Value pred = v.args[0].value;
  if (!pred.is_bool()) {
    runtime_error(vid, "if-predicate is not a boolean");
    return;
  }
  ++stats_.if_resolutions;
  const std::size_t other_i = pred.as_bool() ? 2 : 1;
  // Dereference the untaken branch (§3.2): any speculative tasks below it
  // become irrelevant the moment it drops out of R.
  ++stats_.dereferences;
  mut_.dereference_at(vid, other_i);
  // Drop the consumed predicate edge; args become [chosen].
  mut_.delete_reference_at(vid, 0);

  Vertex& v2 = g_.at(vid);
  DGR_CHECK(v2.args.size() == 1);
  ArgEdge& chosen = v2.args[0];
  if (chosen.value.defined()) {
    complete(vid, chosen.value);  // speculation already returned it
    return;
  }
  if (chosen.req == ReqKind::kEager) {
    // Upgrade the outstanding speculative request to vital (§3.2 item 2).
    // Already-pooled tasks of the speculative pipeline keep their old
    // priority until the next restructuring reprioritizes them; tasks
    // spawned from then on are boosted by pool_prio().
    mut_.request_arg_at(vid, 0, ReqKind::kVital);
  } else if (chosen.req == ReqKind::kNone) {
    mut_.request_arg_at(vid, 0, ReqKind::kVital);
    Task t = Task::request(vid, chosen.to, ReqKind::kVital);
    t.pool_prior = 3;
    sink_.spawn(std::move(t));
  }
  (void)prio;
}

void Machine::step_list_accessor(VertexId vid, std::uint8_t prio) {
  Vertex& v = g_.at(vid);
  // Phase 2: the field's value arrived.
  if (v.args.size() == 2 && v.args[1].value.defined()) {
    complete(vid, v.args[1].value);
    return;
  }
  // Phase 1: the cell's WHNF arrived — acquire the field and demand it.
  if (v.args.size() != 1 || !v.args[0].value.defined()) return;
  const Value cv = v.args[0].value;
  if (cv.is_nil()) {
    runtime_error(vid, v.op == OpCode::kHead ? "head of nil" : "tail of nil");
    return;
  }
  if (!cv.is_node()) {
    runtime_error(vid, "head/tail of a non-list");
    return;
  }
  const VertexId cell = cv.node;
  const Vertex& cx = g_.at(cell);
  DGR_CHECK_MSG(cx.live && cx.op == OpCode::kCons && cx.args.size() == 2,
                "node value is not a cons cell");
  const VertexId field = cx.args[v.op == OpCode::kHead ? 0 : 1].to;
  if (acq_trace_) acq_trace_(vid, cell, field);
  // The field arrived as a value, not through an access chain: an acquired
  // reference (rescue-wave cooperation).
  mut_.acquire_reference(vid, field, ReqKind::kVital);
  Task t = Task::request(vid, field, ReqKind::kVital);
  t.pool_prior = pool_prio(field, prio);
  sink_.spawn(std::move(t));
}

void Machine::try_finish_prim(VertexId vid) {
  Vertex& v = g_.at(vid);
  DGR_CHECK_MSG(static_cast<int>(v.args.size()) == op_arity(v.op),
                "prim operand count mismatch at completion");
  for (const ArgEdge& e : v.args)
    if (!e.value.defined()) return;  // still awaiting operands

  auto intval = [&](std::size_t i, bool& ok) {
    if (!v.args[i].value.is_int()) {
      ok = false;
      return std::int64_t{0};
    }
    return v.args[i].value.as_int();
  };
  auto boolval = [&](std::size_t i, bool& ok) {
    if (!v.args[i].value.is_bool()) {
      ok = false;
      return false;
    }
    return v.args[i].value.as_bool();
  };

  bool ok = true;
  Value r;
  switch (v.op) {
    case OpCode::kAdd: r = Value::of_int(intval(0, ok) + intval(1, ok)); break;
    case OpCode::kSub: r = Value::of_int(intval(0, ok) - intval(1, ok)); break;
    case OpCode::kMul: r = Value::of_int(intval(0, ok) * intval(1, ok)); break;
    case OpCode::kDiv: {
      const std::int64_t a = intval(0, ok), b = intval(1, ok);
      if (ok && b == 0) {
        runtime_error(vid, "division by zero");
        return;
      }
      r = Value::of_int(ok ? a / b : 0);
      break;
    }
    case OpCode::kMod: {
      const std::int64_t a = intval(0, ok), b = intval(1, ok);
      if (ok && b == 0) {
        runtime_error(vid, "modulo by zero");
        return;
      }
      r = Value::of_int(ok ? a % b : 0);
      break;
    }
    case OpCode::kEq: r = Value::of_bool(intval(0, ok) == intval(1, ok)); break;
    case OpCode::kNe: r = Value::of_bool(intval(0, ok) != intval(1, ok)); break;
    case OpCode::kLt: r = Value::of_bool(intval(0, ok) < intval(1, ok)); break;
    case OpCode::kLe: r = Value::of_bool(intval(0, ok) <= intval(1, ok)); break;
    case OpCode::kAnd: r = Value::of_bool(boolval(0, ok) && boolval(1, ok)); break;
    case OpCode::kOr: r = Value::of_bool(boolval(0, ok) || boolval(1, ok)); break;
    case OpCode::kNot: r = Value::of_bool(!boolval(0, ok)); break;
    case OpCode::kId: r = v.args[0].value; break;
    default: DGR_CHECK(false);
  }
  if (!ok) {
    runtime_error(vid, std::string("type error at '") + op_name(v.op) + "'");
    return;
  }
  ++stats_.prim_results;
  complete(vid, r);
}

void Machine::complete(VertexId vid, const Value& val) {
  Vertex& v = g_.at(vid);
  if (trace_) trace_(vid, v.op, val);
  v.value = val;
  v.evaluating = false;
  // Reply to every waiter (the paper's "tasks <v,s_i> are spawned for each
  // s_i ∈ requested(v)").
  const std::vector<VertexId> waiters = std::move(v.requested);
  g_.at(vid).requested.clear();
  for (VertexId w : waiters) {
    if (w.valid()) {
      mut_.record_stale_waiter(vid, w);
      sink_.spawn(Task::return_val(vid, w, val, 3));
    } else {
      external_[vid.pack()] = val;
    }
  }
  // A computed vertex no longer depends on its operands: drop the edges so
  // consumed subgraphs become garbage for the collector. Node-valued
  // vertices are the exception — a cons cell needs its fields, and a
  // forwarder must keep the referent reachable for later acquirers (the
  // retained-edge guarantee behind Mutator::acquire_reference).
  if (!val.is_node()) {
    while (!g_.at(vid).args.empty()) mut_.delete_reference_at(vid, 0);
  }
}

void Machine::runtime_error(VertexId vid, const std::string& msg) {
  if (error_.empty()) {
    error_ = msg + " (vertex " + std::to_string(vid.pe) + ":" +
             std::to_string(vid.idx) + ")";
    DGR_WARN("reduction error: %s", error_.c_str());
  }
  // Complete with a defined-but-bogus value so the computation drains
  // instead of wedging; callers must check has_error().
  complete(vid, Value::of_int(0));
}

PeId Machine::pick_pe(PeId home) {
  if (opt_.placement != Placement::kScatter) return home;
  return static_cast<PeId>(rr_++ % g_.num_pes());
}

const char* placement_name(Placement p) {
  switch (p) {
    case Placement::kScatter: return "scatter";
    case Placement::kHome: return "home";
    case Placement::kChunk: return "chunk";
  }
  return "?";
}

bool parse_placement(const char* name, Placement* out) {
  const std::string_view s = name;
  if (s == "scatter" || s == "rr") {
    *out = Placement::kScatter;
  } else if (s == "home") {
    *out = Placement::kHome;
  } else if (s == "chunk" || s == "greedy") {
    *out = Placement::kChunk;
  } else {
    return false;
  }
  return true;
}

}  // namespace dgr
