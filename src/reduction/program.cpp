#include "reduction/program.h"

#include <optional>

#include "util/assert.h"

namespace dgr {

namespace {

using lang::Expr;
using lang::ExprKind;

struct FnSig {
  std::uint32_t id;
  std::uint32_t arity;
};

// List builtins: name → (opcode, arity). `nil` is handled as a variable.
std::optional<std::pair<OpCode, std::uint32_t>> builtin_op(
    const std::string& name) {
  if (name == "cons") return {{OpCode::kCons, 2}};
  if (name == "head") return {{OpCode::kHead, 1}};
  if (name == "tail") return {{OpCode::kTail, 1}};
  if (name == "isnil") return {{OpCode::kIsNil, 1}};
  return std::nullopt;
}

bool is_reserved(const std::string& name) {
  return name == "nil" || builtin_op(name).has_value();
}

struct Compiler {
  const std::unordered_map<std::string, FnSig>& fns;
  Template tpl;
  // Reserved-slot aliases (see compile_let): alias[i] = the ref node i
  // actually stands for.
  std::unordered_map<std::uint32_t, TRef> alias;

  std::uint32_t add_node(TNode n) {
    tpl.nodes.push_back(std::move(n));
    return static_cast<std::uint32_t>(tpl.nodes.size() - 1);
  }

  using Env = std::unordered_map<std::string, TRef>;

  TRef compile(const Expr& e, Env& env) {
    switch (e.kind) {
      case ExprKind::kNum:
      case ExprKind::kBool: {
        TNode n;
        n.op = OpCode::kLit;
        n.lit = e.num;
        n.lit_is_bool = e.kind == ExprKind::kBool;
        return TRef::node(add_node(std::move(n)));
      }
      case ExprKind::kVar: {
        auto it = env.find(e.name);
        if (it != env.end()) return it->second;
        if (e.name == "nil") {
          TNode n;
          n.op = OpCode::kNil;
          return TRef::node(add_node(std::move(n)));
        }
        throw CompileError("unbound variable '" + e.name + "'");
      }
      case ExprKind::kLet:
        return compile_let(e, env);
      default: {
        const std::uint32_t idx = add_node(TNode{});
        compile_into(idx, e, env);
        return TRef::node(idx);
      }
    }
  }

  // Compile `e` so that its root operator occupies node `idx` (needed for
  // recursive lets, where the bound name must refer to the node before its
  // definition is compiled). Var/Num/Bool/Let roots that merely alias
  // another ref record an alias instead.
  void compile_into(std::uint32_t idx, const Expr& e, Env& env) {
    switch (e.kind) {
      case ExprKind::kBin: {
        TNode n;
        n.op = e.op;
        n.children.push_back(compile(*e.kids[0], env));
        n.children.push_back(compile(*e.kids[1], env));
        tpl.nodes[idx] = std::move(n);
        return;
      }
      case ExprKind::kNot: {
        TNode n;
        n.op = OpCode::kNot;
        n.children.push_back(compile(*e.kids[0], env));
        tpl.nodes[idx] = std::move(n);
        return;
      }
      case ExprKind::kIf: {
        TNode n;
        n.op = OpCode::kIf;
        for (const auto& k : e.kids) n.children.push_back(compile(*k, env));
        tpl.nodes[idx] = std::move(n);
        return;
      }
      case ExprKind::kCall: {
        // List builtins compile to dedicated operators.
        if (const auto b = builtin_op(e.name); b.has_value()) {
          const auto& [bop, barity] = *b;
          if (e.kids.size() != barity)
            throw CompileError("arity mismatch calling builtin '" + e.name +
                               "'");
          TNode n;
          n.op = bop;
          for (const auto& k : e.kids) n.children.push_back(compile(*k, env));
          tpl.nodes[idx] = std::move(n);
          return;
        }
        auto it = fns.find(e.name);
        if (it == fns.end())
          throw CompileError("unknown function '" + e.name + "'");
        if (it->second.arity != e.kids.size())
          throw CompileError("arity mismatch calling '" + e.name + "': got " +
                             std::to_string(e.kids.size()) + ", want " +
                             std::to_string(it->second.arity));
        TNode n;
        n.op = OpCode::kCall;
        n.fn_id = it->second.id;
        for (const auto& k : e.kids) n.children.push_back(compile(*k, env));
        tpl.nodes[idx] = std::move(n);
        return;
      }
      case ExprKind::kNum:
      case ExprKind::kBool: {
        TNode n;
        n.op = OpCode::kLit;
        n.lit = e.num;
        n.lit_is_bool = e.kind == ExprKind::kBool;
        tpl.nodes[idx] = std::move(n);
        return;
      }
      case ExprKind::kVar: {
        auto it = env.find(e.name);
        if (it == env.end())
          throw CompileError("unbound variable '" + e.name + "'");
        alias.emplace(idx, it->second);
        return;
      }
      case ExprKind::kLet: {
        // Bind the inner let, then compile its body into this slot.
        Env inner = env;
        bind_let(*e.kids[0], e.name, inner);
        compile_into(idx, *e.kids[1], inner);
        return;
      }
    }
  }

  // Establish env[name] for a (recursive) let binding and compile the bound
  // expression.
  void bind_let(const Expr& bound, const std::string& name, Env& env) {
    if (bound.kind == ExprKind::kVar || bound.kind == ExprKind::kNum ||
        bound.kind == ExprKind::kBool) {
      // Non-recursive trivially (a bare var can't legally self-reference).
      env[name] = compile(bound, env);
      return;
    }
    const std::uint32_t idx = add_node(TNode{});
    env[name] = TRef::node(idx);  // visible in its own definition (letrec)
    compile_into(idx, bound, env);
  }

  TRef compile_let(const Expr& e, Env& env) {
    Env inner = env;
    bind_let(*e.kids[0], e.name, inner);
    return compile(*e.kids[1], inner);
  }

  TRef resolve(TRef r) const {
    std::size_t hops = 0;
    while (!r.is_param) {
      auto it = alias.find(r.idx);
      if (it == alias.end()) break;
      r = it->second;
      if (++hops > alias.size())
        throw CompileError("unresolvable let-alias cycle in '" + tpl.name +
                           "'");
    }
    return r;
  }

  // Resolve aliases everywhere, then drop nodes unreachable from the root.
  void finalize(TRef root) {
    root = resolve(root);
    for (TNode& n : tpl.nodes)
      for (TRef& c : n.children) c = resolve(c);

    std::vector<std::int64_t> remap(tpl.nodes.size(), -1);
    std::vector<TNode> kept;
    if (!root.is_param) {
      // Iterative DFS collecting reachable nodes in stable order.
      std::vector<std::uint32_t> stack{root.idx};
      while (!stack.empty()) {
        const std::uint32_t i = stack.back();
        stack.pop_back();
        if (remap[i] >= 0) continue;
        remap[i] = 0;  // visited marker; real index assigned below
        for (const TRef& c : tpl.nodes[i].children)
          if (!c.is_param && remap[c.idx] < 0) stack.push_back(c.idx);
      }
      // Assign compact indices in original order (deterministic layout).
      std::uint32_t next = 0;
      for (std::uint32_t i = 0; i < tpl.nodes.size(); ++i)
        if (remap[i] >= 0) remap[i] = next++;
      kept.reserve(next);
      for (std::uint32_t i = 0; i < tpl.nodes.size(); ++i)
        if (remap[i] >= 0) kept.push_back(std::move(tpl.nodes[i]));
      for (TNode& n : kept)
        for (TRef& c : n.children)
          if (!c.is_param) c.idx = static_cast<std::uint32_t>(remap[c.idx]);
      root.idx = static_cast<std::uint32_t>(remap[root.idx]);
    }
    tpl.nodes = std::move(kept);
    tpl.root = root;
  }
};

}  // namespace

Program Program::compile(const lang::ProgramAst& ast) {
  Program p;
  std::unordered_map<std::string, FnSig> fns;
  for (const lang::Def& d : ast.defs) {
    if (is_reserved(d.name))
      throw CompileError("'" + d.name + "' is a reserved builtin");
    if (fns.count(d.name))
      throw CompileError("duplicate definition of '" + d.name + "'");
    fns[d.name] = FnSig{static_cast<std::uint32_t>(p.templates_.size()),
                        static_cast<std::uint32_t>(d.params.size())};
    p.templates_.emplace_back();
  }
  for (const lang::Def& d : ast.defs) {
    Compiler c{fns, Template{}, {}};
    c.tpl.name = d.name;
    c.tpl.nparams = static_cast<std::uint32_t>(d.params.size());
    Compiler::Env env;
    for (std::uint32_t i = 0; i < d.params.size(); ++i) {
      if (env.count(d.params[i]))
        throw CompileError("duplicate parameter '" + d.params[i] + "' in '" +
                           d.name + "'");
      env[d.params[i]] = TRef::param(i);
    }
    const TRef root = c.compile(*d.body, env);
    c.finalize(root);
    p.templates_[fns[d.name].id] = std::move(c.tpl);
  }
  p.by_name_.reserve(fns.size());
  for (const auto& [name, sig] : fns) p.by_name_[name] = sig.id;
  return p;
}

Program Program::from_source(const std::string& src) {
  return compile(lang::parse_program(src));
}

std::uint32_t Program::fn_id(const std::string& name) const {
  auto it = by_name_.find(name);
  DGR_CHECK_MSG(it != by_name_.end(), "unknown function");
  return it->second;
}

}  // namespace dgr
