#include "reduction/lang.h"

#include <cctype>

namespace dgr::lang {

namespace {

enum class Tok : std::uint8_t {
  kEnd, kNum, kIdent,
  kDef, kIf, kThen, kElse, kLet, kIn, kTrue, kFalse, kAnd, kOr, kNot,
  kLParen, kRParen, kComma, kSemi, kEquals,
  kPlus, kMinus, kStar, kSlash, kPercent,
  kEq, kNe, kLt, kLe, kGt, kGe,
};

struct Lexer {
  explicit Lexer(const std::string& src) : src_(src) { advance(); }

  Tok tok = Tok::kEnd;
  std::int64_t num = 0;
  std::string ident;
  std::size_t line = 1, col = 1;

  [[noreturn]] void fail(const std::string& msg) const {
    throw ParseError(msg, line, col);
  }

  void advance() {
    skip_ws();
    line_ = line;
    col_ = col;
    if (pos_ >= src_.size()) {
      tok = Tok::kEnd;
      return;
    }
    const char c = src_[pos_];
    if (std::isdigit(static_cast<unsigned char>(c))) {
      num = 0;
      while (pos_ < src_.size() &&
             std::isdigit(static_cast<unsigned char>(src_[pos_]))) {
        num = num * 10 + (src_[pos_] - '0');
        bump();
      }
      tok = Tok::kNum;
      return;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      ident.clear();
      while (pos_ < src_.size() &&
             (std::isalnum(static_cast<unsigned char>(src_[pos_])) ||
              src_[pos_] == '_')) {
        ident.push_back(src_[pos_]);
        bump();
      }
      tok = keyword(ident);
      return;
    }
    bump();
    switch (c) {
      case '(': tok = Tok::kLParen; return;
      case ')': tok = Tok::kRParen; return;
      case ',': tok = Tok::kComma; return;
      case ';': tok = Tok::kSemi; return;
      case '+': tok = Tok::kPlus; return;
      case '-': tok = Tok::kMinus; return;
      case '*': tok = Tok::kStar; return;
      case '/': tok = Tok::kSlash; return;
      case '%': tok = Tok::kPercent; return;
      case '=':
        if (peek() == '=') {
          bump();
          tok = Tok::kEq;
        } else {
          tok = Tok::kEquals;
        }
        return;
      case '!':
        if (peek() == '=') {
          bump();
          tok = Tok::kNe;
          return;
        }
        fail("unexpected '!'");
      case '<':
        if (peek() == '=') {
          bump();
          tok = Tok::kLe;
        } else {
          tok = Tok::kLt;
        }
        return;
      case '>':
        if (peek() == '=') {
          bump();
          tok = Tok::kGe;
        } else {
          tok = Tok::kGt;
        }
        return;
      default:
        fail(std::string("unexpected character '") + c + "'");
    }
  }

 private:
  static Tok keyword(const std::string& s) {
    if (s == "def") return Tok::kDef;
    if (s == "if") return Tok::kIf;
    if (s == "then") return Tok::kThen;
    if (s == "else") return Tok::kElse;
    if (s == "let") return Tok::kLet;
    if (s == "in") return Tok::kIn;
    if (s == "true") return Tok::kTrue;
    if (s == "false") return Tok::kFalse;
    if (s == "and") return Tok::kAnd;
    if (s == "or") return Tok::kOr;
    if (s == "not") return Tok::kNot;
    return Tok::kIdent;
  }

  char peek() const { return pos_ < src_.size() ? src_[pos_] : '\0'; }

  void bump() {
    if (src_[pos_] == '\n') {
      ++line;
      col = 1;
    } else {
      ++col;
    }
    ++pos_;
  }

  void skip_ws() {
    for (;;) {
      while (pos_ < src_.size() &&
             std::isspace(static_cast<unsigned char>(src_[pos_])))
        bump();
      // '#' comments to end of line.
      if (pos_ < src_.size() && src_[pos_] == '#') {
        while (pos_ < src_.size() && src_[pos_] != '\n') bump();
        continue;
      }
      return;
    }
  }

  const std::string& src_;
  std::size_t pos_ = 0;
  std::size_t line_ = 1, col_ = 1;
};

ExprPtr mk(ExprKind k) {
  auto e = std::make_unique<Expr>();
  e->kind = k;
  return e;
}

struct Parser {
  explicit Parser(const std::string& src) : lx(src) {}
  Lexer lx;

  void expect(Tok t, const char* what) {
    if (lx.tok != t) lx.fail(std::string("expected ") + what);
    lx.advance();
  }

  ProgramAst program() {
    ProgramAst p;
    while (lx.tok != Tok::kEnd) {
      expect(Tok::kDef, "'def'");
      Def d;
      if (lx.tok != Tok::kIdent) lx.fail("expected function name");
      d.name = lx.ident;
      lx.advance();
      expect(Tok::kLParen, "'('");
      if (lx.tok != Tok::kRParen) {
        for (;;) {
          if (lx.tok != Tok::kIdent) lx.fail("expected parameter name");
          d.params.push_back(lx.ident);
          lx.advance();
          if (lx.tok != Tok::kComma) break;
          lx.advance();
        }
      }
      expect(Tok::kRParen, "')'");
      expect(Tok::kEquals, "'='");
      d.body = expr();
      expect(Tok::kSemi, "';'");
      p.defs.push_back(std::move(d));
    }
    if (p.defs.empty()) lx.fail("empty program");
    return p;
  }

  ExprPtr expr() {
    if (lx.tok == Tok::kIf) {
      lx.advance();
      auto e = mk(ExprKind::kIf);
      e->kids.push_back(expr());
      expect(Tok::kThen, "'then'");
      e->kids.push_back(expr());
      expect(Tok::kElse, "'else'");
      e->kids.push_back(expr());
      return e;
    }
    if (lx.tok == Tok::kLet) {
      lx.advance();
      auto e = mk(ExprKind::kLet);
      if (lx.tok != Tok::kIdent) lx.fail("expected let-bound name");
      e->name = lx.ident;
      lx.advance();
      expect(Tok::kEquals, "'='");
      e->kids.push_back(expr());
      expect(Tok::kIn, "'in'");
      e->kids.push_back(expr());
      return e;
    }
    return or_expr();
  }

  ExprPtr bin(OpCode op, ExprPtr l, ExprPtr r) {
    auto e = mk(ExprKind::kBin);
    e->op = op;
    e->kids.push_back(std::move(l));
    e->kids.push_back(std::move(r));
    return e;
  }

  ExprPtr or_expr() {
    auto l = and_expr();
    while (lx.tok == Tok::kOr) {
      lx.advance();
      l = bin(OpCode::kOr, std::move(l), and_expr());
    }
    return l;
  }

  ExprPtr and_expr() {
    auto l = cmp_expr();
    while (lx.tok == Tok::kAnd) {
      lx.advance();
      l = bin(OpCode::kAnd, std::move(l), cmp_expr());
    }
    return l;
  }

  ExprPtr cmp_expr() {
    auto l = add_expr();
    switch (lx.tok) {
      case Tok::kEq: lx.advance(); return bin(OpCode::kEq, std::move(l), add_expr());
      case Tok::kNe: lx.advance(); return bin(OpCode::kNe, std::move(l), add_expr());
      case Tok::kLt: lx.advance(); return bin(OpCode::kLt, std::move(l), add_expr());
      case Tok::kLe: lx.advance(); return bin(OpCode::kLe, std::move(l), add_expr());
      // a > b  ⇒  b < a ;  a >= b  ⇒  b <= a
      case Tok::kGt: lx.advance(); return bin(OpCode::kLt, add_expr(), std::move(l));
      case Tok::kGe: lx.advance(); return bin(OpCode::kLe, add_expr(), std::move(l));
      default: return l;
    }
  }

  ExprPtr add_expr() {
    auto l = mul_expr();
    for (;;) {
      if (lx.tok == Tok::kPlus) {
        lx.advance();
        l = bin(OpCode::kAdd, std::move(l), mul_expr());
      } else if (lx.tok == Tok::kMinus) {
        lx.advance();
        l = bin(OpCode::kSub, std::move(l), mul_expr());
      } else {
        return l;
      }
    }
  }

  ExprPtr mul_expr() {
    auto l = unary();
    for (;;) {
      if (lx.tok == Tok::kStar) {
        lx.advance();
        l = bin(OpCode::kMul, std::move(l), unary());
      } else if (lx.tok == Tok::kSlash) {
        lx.advance();
        l = bin(OpCode::kDiv, std::move(l), unary());
      } else if (lx.tok == Tok::kPercent) {
        lx.advance();
        l = bin(OpCode::kMod, std::move(l), unary());
      } else {
        return l;
      }
    }
  }

  ExprPtr unary() {
    if (lx.tok == Tok::kNot) {
      lx.advance();
      auto e = mk(ExprKind::kNot);
      e->kids.push_back(unary());
      return e;
    }
    if (lx.tok == Tok::kMinus) {
      lx.advance();
      auto zero = mk(ExprKind::kNum);
      zero->num = 0;
      return bin(OpCode::kSub, std::move(zero), unary());
    }
    return atom();
  }

  ExprPtr atom() {
    switch (lx.tok) {
      case Tok::kNum: {
        auto e = mk(ExprKind::kNum);
        e->num = lx.num;
        lx.advance();
        return e;
      }
      case Tok::kTrue:
      case Tok::kFalse: {
        auto e = mk(ExprKind::kBool);
        e->num = lx.tok == Tok::kTrue ? 1 : 0;
        lx.advance();
        return e;
      }
      case Tok::kIdent: {
        const std::string name = lx.ident;
        lx.advance();
        if (lx.tok == Tok::kLParen) {
          lx.advance();
          auto e = mk(ExprKind::kCall);
          e->name = name;
          if (lx.tok != Tok::kRParen) {
            for (;;) {
              e->kids.push_back(expr());
              if (lx.tok != Tok::kComma) break;
              lx.advance();
            }
          }
          expect(Tok::kRParen, "')'");
          return e;
        }
        auto e = mk(ExprKind::kVar);
        e->name = name;
        return e;
      }
      case Tok::kLParen: {
        lx.advance();
        auto e = expr();
        expect(Tok::kRParen, "')'");
        return e;
      }
      default:
        lx.fail("expected expression");
    }
  }
};

}  // namespace

ProgramAst parse_program(const std::string& src) {
  Parser p(src);
  return p.program();
}

ExprPtr parse_expression(const std::string& src) {
  Parser p(src);
  auto e = p.expr();
  if (p.lx.tok != Tok::kEnd) p.lx.fail("trailing input after expression");
  return e;
}

std::string to_string(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kNum: return std::to_string(e.num);
    case ExprKind::kBool: return e.num ? "true" : "false";
    case ExprKind::kVar: return e.name;
    case ExprKind::kNot: return "not " + to_string(*e.kids[0]);
    case ExprKind::kBin: {
      // Built up with += rather than one operator+ chain: GCC 12 at -O3
      // flags the chained form with a false-positive -Wrestrict.
      std::string s = "(";
      s += to_string(*e.kids[0]);
      s += ' ';
      s += op_name(e.op);
      s += ' ';
      s += to_string(*e.kids[1]);
      s += ')';
      return s;
    }
    case ExprKind::kIf:
      return "if " + to_string(*e.kids[0]) + " then " + to_string(*e.kids[1]) +
             " else " + to_string(*e.kids[2]);
    case ExprKind::kLet:
      return "let " + e.name + " = " + to_string(*e.kids[0]) + " in " +
             to_string(*e.kids[1]);
    case ExprKind::kCall: {
      std::string s = e.name + "(";
      for (std::size_t i = 0; i < e.kids.size(); ++i) {
        if (i) s += ", ";
        s += to_string(*e.kids[i]);
      }
      return s + ")";
    }
  }
  return "?";
}

}  // namespace dgr::lang
