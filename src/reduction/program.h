// Compiled program representation: one graph template per function.
//
// A template is the paper's "arbitrary subgraph (obtained from the free
// list)" that expand-node splices below a vertex (Fig 4-2): calling a
// function allocates fresh vertices for the template's nodes, wires
// parameter references to the caller's actual-argument subgraphs (sharing
// them — a parameter used twice yields two edges to the same vertex), and
// rewrites the call vertex into the instance's root operator.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "graph/opcode.h"
#include "reduction/lang.h"

namespace dgr {

struct TRef {
  bool is_param = false;
  std::uint32_t idx = 0;  // node index or parameter index

  static TRef node(std::uint32_t i) { return TRef{false, i}; }
  static TRef param(std::uint32_t i) { return TRef{true, i}; }
  friend bool operator==(TRef a, TRef b) {
    return a.is_param == b.is_param && a.idx == b.idx;
  }
};

struct TNode {
  OpCode op = OpCode::kLit;
  std::int64_t lit = 0;
  bool lit_is_bool = false;
  std::uint32_t fn_id = 0;  // for kCall
  std::vector<TRef> children;
};

struct Template {
  std::string name;
  std::uint32_t nparams = 0;
  std::vector<TNode> nodes;
  TRef root;  // node or parameter the function's value aliases
};

class CompileError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class Program {
 public:
  // Compile a parsed program. Throws CompileError on unknown names, arity
  // mismatches, or unresolvable let-alias cycles.
  static Program compile(const lang::ProgramAst& ast);

  // Convenience: parse + compile.
  static Program from_source(const std::string& src);

  const Template& fn(std::uint32_t id) const { return templates_.at(id); }
  std::uint32_t fn_id(const std::string& name) const;
  bool has_fn(const std::string& name) const {
    return by_name_.count(name) != 0;
  }
  std::size_t num_fns() const { return templates_.size(); }

 private:
  std::vector<Template> templates_;
  std::unordered_map<std::string, std::uint32_t> by_name_;
};

}  // namespace dgr
